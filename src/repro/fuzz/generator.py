"""Case drawing and materialisation: CaseSpec -> runnable Workload.

Every generated kernel shares one shape:

1. an optional *benign phase* — a guarded streaming ring over all
   buffers (``acc += b_k[gtid]`` for ``benign_rounds`` rounds, then
   ``b0[gtid] = acc``) whose accesses are statically provable, so
   GPUShield's compiler filters them (the realistic mixed workload);
2. a thread-0 *attack/probe phase* that loads ``victim[0]`` and folds
   the result into the offset (``off = atk + j*0``) — the loop-carried /
   data-dependent idiom that keeps the pointer runtime-checked (Type 2)
   and defeats the static analysis of *every* tool under test.

Safe cases run the identical probe with an in-bounds offset, so the
zero-false-positive claim is tested on the runtime-checked path, not on
statically-filtered accesses.

Launch-time attacks (``forged_id``, ``stale_replay``) cannot be
expressed in the kernel: :class:`ShieldMutator` applies them between
``driver.launch`` and ``gpu.run`` via the harness's ``launch_mutator``
hook, and simultaneously captures the per-launch ground truth (honest
pointer, cipher, local/heap region IDs) that attribution checks need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.pointer import PointerType, decode, make_base_pointer
from repro.fuzz.spec import ATTACK_KINDS, MAX_MARGIN, STORE_ONLY_KINDS, CaseSpec
from repro.isa.builder import KernelBuilder
from repro.workloads.templates import (
    ArgSpec,
    BufferSpec,
    KernelRun,
    Workload,
    _buf,
    _delta,
    _heap_off,
    _scalar,
)

#: Value planted by attack stores — recognisable in memory dumps.
ATTACK_VALUE = 0x0BAD


def _valid_elems(e: int) -> bool:
    slack = (512 - (e * 4 % 512)) % 512
    return e >= 2 and slack >= MAX_MARGIN + 8


def nearest_valid_elems(e: int) -> int:
    """Largest element count <= e whose alignment slack is usable."""
    e = max(e, 2)
    while e > 2 and not _valid_elems(e):
        e -= 1
    return e if _valid_elems(e) else 16


class CaseGenerator:
    """Deterministic case drawing: ``draw(i)`` depends only on (seed, i)."""

    def __init__(self, seed: int):
        self.seed = seed

    def draw(self, index: int) -> CaseSpec:
        rng = random.Random((self.seed << 20) ^ (index * 0x9E3779B1))
        # Roughly one safe case in three: enough attack coverage while
        # keeping the false-positive check statistically meaningful.
        kind = (rng.choice(ATTACK_KINDS) if rng.random() < 2 / 3
                else "safe")
        return self.draw_kind(kind, index, rng)

    def draw_kind(self, kind: str, index: int,
                  rng: Optional[random.Random] = None) -> CaseSpec:
        rng = rng or random.Random((self.seed << 20) ^ (index * 0x9E3779B1))
        nbuf = rng.randint(3 if kind == "canary_jump" else 2, 6)
        elems = nearest_valid_elems(rng.randint(16, 420))
        victim = rng.randrange(1 if kind == "underflow" else 0, nbuf)
        target = -1
        inner = 0
        if kind in ("inter_buffer", "canary_jump"):
            others = [i for i in range(nbuf)
                      if i != victim and (kind != "canary_jump"
                                          or nbuf < 3
                                          or abs(i - victim) >= 2)]
            if not others:          # victim placement left no far target
                victim = 0
                others = [i for i in range(2, nbuf)]
            target = rng.choice(others)
            inner = rng.randrange(0, elems) * 4
        margin = rng.randrange(1, MAX_MARGIN // 4 + 1) * 4
        local_words = rng.randint(2, 6)
        if kind == "local_var":
            margin = rng.randrange(0, local_words)
        is_store = (True if kind in STORE_ONLY_KINDS
                    else rng.random() < 0.6)
        probe = rng.randrange(0, elems)
        benign_rounds = rng.randint(0, 3)
        workgroups = rng.randint(1, 3)
        wg_size = rng.choice((32, 64))
        if kind == "safe" and benign_rounds:
            # Reserve the probe slot by construction: the benign phase
            # writes b0[gtid] per live thread, so a probe of a *foreign*
            # live slot would make the "safe" case race with itself and
            # its digest thread-schedule-dependent.  Remap such probes
            # past every live thread (or onto thread 0's own slot when
            # the buffer has no dead tail); CaseSpec.race_verdict then
            # reports race-free and the shadow detector confirms it.
            limit = min(elems, workgroups * wg_size)
            if 0 < probe < limit:
                probe = (limit + probe % (elems - limit)
                         if elems > limit else 0)
        spec = CaseSpec(
            case_id=f"s{self.seed}-c{index:04d}-{kind}",
            kind=kind,
            seed=(self.seed << 20) ^ index,
            elems=elems,
            nbuf=nbuf,
            victim=victim,
            target=target,
            margin=margin,
            inner=inner,
            probe=probe,
            attack_is_store=is_store,
            benign_rounds=benign_rounds,
            workgroups=workgroups,
            wg_size=wg_size,
            local_words=local_words,
        )
        spec.validate()
        return spec

    def draw_many(self, count: int, start: int = 0) -> List[CaseSpec]:
        return [self.draw(start + i) for i in range(count)]


# ---------------------------------------------------------------------------
# Materialisation
# ---------------------------------------------------------------------------


def _attack_arg(spec: CaseSpec) -> ArgSpec:
    """The ``atk`` scalar: the byte (or word) offset of the attack access,
    resolved per-runner for the kinds whose ground truth depends on the
    actual allocation layout."""
    if spec.kind == "overflow":
        return _scalar(spec.nbytes + spec.margin)
    if spec.kind == "underflow":
        return _scalar(-spec.margin)
    if spec.kind in ("inter_buffer", "canary_jump"):
        return _delta(f"b{spec.victim}", f"b{spec.target}", spec.inner)
    if spec.kind == "heap":
        return _heap_off(4096 + spec.margin)
    if spec.kind == "local_var":
        return _scalar(spec.local_words + spec.margin)
    # safe / forged_id / stale_replay: an in-bounds probe; the attack (if
    # any) happens at the launch boundary, not in the offset.
    return _scalar(spec.probe * 4)


def build_workload(spec: CaseSpec) -> Workload:
    """Compile the case into a runnable workload (config-independent)."""
    spec.validate()
    b = KernelBuilder(f"fuzz_{spec.kind}")
    ptrs = [b.arg_ptr(name) for name in spec.buffer_names]
    atk = b.arg_scalar("atk")
    nn = b.arg_scalar("n")
    v1 = None
    if spec.kind == "local_var":
        v1 = b.local_var("v1", words_per_thread=spec.local_words)
        b.local_var("v2", words_per_thread=spec.local_words)
    gtid = b.gtid()

    if spec.benign_rounds:
        pred = b.setp("lt", gtid, nn)
        with b.if_(pred):
            acc = b.mov(0.0)
            for _ in range(spec.benign_rounds):
                for ptr in ptrs:
                    acc = b.fadd(acc, b.ld_idx(ptr, gtid, dtype="f32"))
            b.st_idx(ptrs[0], gtid, acc, dtype="f32")

    victim = ptrs[spec.victim]
    p0 = b.setp("eq", gtid, 0)
    with b.if_(p0):
        # Data-dependent offset: keeps the pointer runtime-checked.
        j = b.ld_idx(victim, 0, dtype="i32")
        off = b.add(atk, b.mul(j, 0))
        if spec.kind == "heap":
            hp = b.malloc(64)
            b.st(hp, off, ATTACK_VALUE, dtype="i32")
        elif spec.kind == "local_var":
            b.st_local(v1, off, 7.0)
        elif spec.attack_is_store:
            b.st(victim, off, ATTACK_VALUE, dtype="i32")
        else:
            stolen = b.ld(victim, off, dtype="i32")
            # Exfiltrate into thread 0's own slot: any other element is
            # a live thread's benign-phase slot and would race with it.
            b.st(victim, 0, stolen, dtype="i32")
    kernel = b.build()

    args: Dict[str, ArgSpec] = {name: _buf(name)
                                for name in spec.buffer_names}
    args["atk"] = _attack_arg(spec)
    args["n"] = _scalar(spec.elems)
    run = KernelRun(kernel, args, workgroups=spec.workgroups,
                    wg_size=spec.wg_size)
    # Stale-pointer replay needs a second launch of the same kernel: the
    # mutator re-injects launch 0's tagged pointer into launch 1.
    runs = [run, run] if spec.kind == "stale_replay" else [run]
    return Workload(
        name=f"fuzz:{spec.case_id}",
        buffers=[BufferSpec(name, spec.nbytes, "randf")
                 for name in spec.buffer_names],
        runs=runs,
        category="fuzz",
        suite="fuzz",
        notes=spec.kind,
    )


# ---------------------------------------------------------------------------
# Launch-boundary attacks + ground-truth capture (shield config)
# ---------------------------------------------------------------------------


@dataclass
class LaunchCapture:
    """Ground truth harvested from one prepared launch context."""

    victim_ptr: int = 0
    victim_id: Optional[int] = None
    local_va: Optional[int] = None
    local_id: Optional[int] = None
    heap_id: Optional[int] = None
    heap_base: int = 0
    heap_limit: int = 0
    kernel_id: int = 0


class ShieldMutator:
    """``launch_mutator`` hook for the shield config.

    Captures attribution ground truth from every launch and applies the
    launch-boundary attacks (forged ID payloads, stale-pointer replay)
    that exist below the kernel's ISA.  On unshielded launches pointers
    carry no metadata, so both attacks degrade to harmless no-ops —
    which is exactly the structural gap the expectation matrix encodes
    for the software baselines.
    """

    #: XOR mask applied to the encrypted payload.  Non-zero, so the
    #: decrypted ID is *guaranteed* to differ from the victim's.
    FORGE_MASK = 0x1555

    def __init__(self, spec: CaseSpec):
        self.spec = spec
        self.captures: List[LaunchCapture] = []
        self._stale: Optional[int] = None

    def __call__(self, runner, launch, index: int) -> None:
        spec = self.spec
        name = f"b{spec.victim}"
        heap = runner.session.driver.heap
        cap = LaunchCapture(heap_base=heap.base, heap_limit=heap.limit,
                            kernel_id=launch.kernel_id)
        cap.victim_ptr = launch.arg_values[name]
        security = getattr(launch, "security", None)
        if security is not None:
            tp = decode(cap.victim_ptr)
            if tp.ptype is PointerType.BASE:
                cap.victim_id = security.cipher.decrypt(tp.payload)
            local = launch.local_buffers.get("__local_v1")
            if local is not None:
                cap.local_va = local.va
                lp = decode(launch.arg_values["__local_v1"])
                if lp.ptype is PointerType.BASE:
                    cap.local_id = security.cipher.decrypt(lp.payload)
            if spec.kind == "heap":
                hp = decode(launch.heap_pointer_tagger(heap.base))
                if hp.ptype is PointerType.BASE:
                    cap.heap_id = security.cipher.decrypt(hp.payload)
        self.captures.append(cap)

        if spec.kind == "forged_id" and security is not None:
            tp = decode(launch.arg_values[name])
            if tp.ptype is PointerType.BASE:
                launch.arg_values[name] = make_base_pointer(
                    tp.va, tp.payload ^ self.FORGE_MASK)
        elif spec.kind == "stale_replay":
            if index == 0:
                self._stale = launch.arg_values[name]
            else:
                launch.arg_values[name] = self._stale


@dataclass
class ExpectedFault:
    """The exact violation the shield must report for an attack case."""

    lo: int
    is_store: bool
    buffer_id: Optional[int]        # None: attribution by address only
    reasons: frozenset = field(default_factory=frozenset)

    def matches(self, violation) -> bool:
        return (violation.lo == self.lo
                and violation.is_store == self.is_store
                and violation.reason in self.reasons
                and (self.buffer_id is None
                     or violation.buffer_id == self.buffer_id))


def expected_fault(spec: CaseSpec, runner,
                   mutator: ShieldMutator) -> Optional[ExpectedFault]:
    """Resolve the manifest's relative ground truth against one run."""
    if spec.safe:
        return None
    cap = mutator.captures[-1]
    victim_va = runner.buffers[f"b{spec.victim}"].va
    oob = frozenset({"out-of-bounds"})
    if spec.kind == "overflow":
        return ExpectedFault(victim_va + spec.nbytes + spec.margin,
                             spec.attack_is_store, cap.victim_id, oob)
    if spec.kind == "underflow":
        return ExpectedFault(victim_va - spec.margin,
                             spec.attack_is_store, cap.victim_id, oob)
    if spec.kind in ("inter_buffer", "canary_jump"):
        target_va = runner.buffers[f"b{spec.target}"].va
        return ExpectedFault(target_va + spec.inner,
                             spec.attack_is_store, cap.victim_id, oob)
    if spec.kind == "heap":
        lo = cap.heap_base + cap.heap_limit + 4096 + spec.margin
        return ExpectedFault(lo, True, cap.heap_id, oob)
    if spec.kind == "local_var":
        word = spec.local_words + spec.margin
        lo = cap.local_va + word * spec.total_threads * 4
        return ExpectedFault(lo, True, cap.local_id, oob)
    # forged_id / stale_replay: the access itself is in bounds; the BCU
    # rejects the ID (garbage decryption -> unassigned entry or foreign
    # bounds), so the reason depends on what the bogus ID hit.
    return ExpectedFault(victim_va + spec.probe * 4, True, None,
                         frozenset({"invalid-id", "out-of-bounds",
                                    "read-only"}))
