"""Differential fuzzing campaign for the GPUShield protection stack.

The paper's security claim (Tables 1 & 4) is a *coverage* claim:
GPUShield catches the out-of-bounds accesses that CUDA-MEMCHECK, clArmor
and GMOD miss, with zero false positives.  Hand-written attack scenarios
under-sample that space, so this package generates randomized workloads
with machine-readable **attack manifests** (exact buffer/offset ground
truth) and scores every protection configuration against them:

* :mod:`repro.fuzz.spec` — the pure-data :class:`CaseSpec` (JSON
  round-trippable) plus its validity invariants;
* :mod:`repro.fuzz.generator` — seeded case drawing and materialisation
  into runnable :class:`~repro.workloads.templates.Workload` objects,
  including the launch-time attacks (forged IDs, stale-pointer replay)
  that only exist at the driver boundary;
* :mod:`repro.fuzz.campaign` — the differential runner: every case
  through every config, scored against the expectation matrix;
* :mod:`repro.fuzz.minimize` — greedy corpus minimisation for failing
  cases (JSON reproducers replayable as standalone pytest cases);
* :mod:`repro.fuzz.cli` — ``python -m repro.fuzz --seed/--cases/--budget``.
"""

from repro.fuzz.campaign import (
    CONFIG_NAMES,
    CampaignResult,
    expectation,
    run_campaign,
    run_case,
)
from repro.fuzz.generator import CaseGenerator, build_workload
from repro.fuzz.minimize import minimize
from repro.fuzz.spec import ATTACK_KINDS, KINDS, CaseSpec

__all__ = [
    "ATTACK_KINDS",
    "CONFIG_NAMES",
    "CampaignResult",
    "CaseGenerator",
    "CaseSpec",
    "KINDS",
    "build_workload",
    "expectation",
    "minimize",
    "run_campaign",
    "run_case",
]
