"""``python -m repro.fuzz`` — run a seeded differential campaign.

Usage::

    python -m repro.fuzz --cases 200 --seed 1
    python -m repro.fuzz --cases 200 --seed 1 --jobs 4 --out artifacts/
    python -m repro.fuzz --cases 200 --seed 1 --jobs 4 --out artifacts/ --resume
    python -m repro.fuzz --cases 50 --seed 1 --budget 300 --out artifacts/
    python -m repro.fuzz --replay reproducer.json
    python -m repro.fuzz --kinds overflow,forged_id --configs shield,base

Exit status is non-zero when any case violates the expectation matrix.
With ``--out`` the detection matrix (``detection_matrix.json``) and a
minimised JSON reproducer per failure land in the output directory;
``--replay FILE`` re-runs one serialized reproducer instead of drawing
fresh cases.

``--jobs N`` shards the campaign across N worker processes on the
parallel runner (:mod:`repro.runner`): per-shard timeouts, crash
isolation, a checkpoint journal (``journal.jsonl``) and a run manifest
(``run_manifest.json``) land next to the artifacts, and ``--resume``
continues an interrupted campaign from its journal — the merged result
is bit-identical to an uninterrupted run.  The per-case wall-clock
``--budget`` applies to the serial path only; parallel campaigns bound
time with per-shard timeouts instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.fuzz.campaign import CONFIG_NAMES, run_campaign, run_case
from repro.fuzz.generator import CaseGenerator
from repro.fuzz.minimize import minimize
from repro.fuzz.spec import KINDS, CaseSpec
from repro.gpu.config import nvidia_config


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing campaign across every "
                    "protection config.")
    parser.add_argument("--cases", type=int, default=50,
                        help="number of cases to draw (default 50)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed (default 1)")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds; remaining "
                             "cases are reported as truncated")
    parser.add_argument("--configs", default=",".join(CONFIG_NAMES),
                        help="comma-separated config subset")
    parser.add_argument("--kinds", default=None,
                        help="restrict drawing to these case kinds")
    parser.add_argument("--out", default=None,
                        help="directory for detection_matrix.json and "
                             "minimised reproducers")
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run one serialized CaseSpec reproducer")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip reproducer minimisation on failure")
    parser.add_argument("--determinism-every", type=int, default=25,
                        help="re-run every Nth case's shield config to "
                             "check determinism (0 disables)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for the parallel runner "
                             "(0 = serial in-process, the default)")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count (default: jobs * 4, capped at "
                             "the case count)")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="checkpoint journal path (default: "
                             "<out>/journal.jsonl when --out is given)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted campaign from its "
                             "checkpoint journal")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        help="per-shard timeout in seconds "
                             "(default 900)")
    parser.add_argument("--retries", type=int, default=1,
                        help="retry budget per shard for crashes/"
                             "timeouts (default 1)")
    return parser.parse_args(argv)


def _run_parallel(args, specs, configs):
    """Shard the campaign onto the parallel runner and merge back."""
    from repro.fuzz.parallel import (DEFAULT_SHARD_TIMEOUT, merge_campaign,
                                     plan_fuzz_shards)
    from repro.runner import HeartbeatReporter, run_jobs

    jobs = max(args.jobs, 1)
    journal = args.journal
    if journal is None and args.out:
        journal = os.path.join(args.out, "journal.jsonl")
    if args.resume and journal is None:
        print("--resume needs --journal FILE (or --out DIR to derive it)",
              file=sys.stderr)
        return None
    plan = plan_fuzz_shards(
        specs, seed=args.seed, jobs=jobs, shards=args.shards,
        configs=configs, determinism_every=args.determinism_every,
        timeout=args.shard_timeout or DEFAULT_SHARD_TIMEOUT,
        max_retries=args.retries)
    reporter = HeartbeatReporter(len(plan), label="fuzz")
    report = run_jobs(
        plan, jobs=jobs, run_name=f"fuzz-seed{args.seed}",
        journal_path=journal, resume=args.resume, out_dir=args.out,
        reporter=reporter,
        meta={"cases": len(specs), "seed": args.seed,
              "configs": list(configs)})
    try:
        result = merge_campaign(
            [report.results[s.job_id] for s in plan], seed=args.seed)
    except RuntimeError as exc:
        print(f"campaign incomplete: {exc}", file=sys.stderr)
        return None
    cases_per_sec = (len(result.outcomes) / report.wall_seconds
                     if report.wall_seconds else 0.0)
    print(f"[fuzz] {len(result.outcomes)} cases via {len(plan)} shards "
          f"on {jobs} workers in {report.wall_seconds:.1f}s "
          f"({cases_per_sec:.1f} cases/s, {report.reused} shards reused "
          "from journal)", file=sys.stderr)
    return result


def _replay(path: str, configs: List[str]) -> int:
    with open(path) as fh:
        spec = CaseSpec.from_dict(json.load(fh))
    outcome = run_case(spec, configs=configs, check_determinism=True)
    print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
    return 0 if outcome.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [c for c in configs if c not in CONFIG_NAMES]
    if unknown:
        print(f"unknown configs: {unknown} (have {list(CONFIG_NAMES)})",
              file=sys.stderr)
        return 2
    if args.replay:
        return _replay(args.replay, configs)

    gen = CaseGenerator(args.seed)
    if args.kinds:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
        bad = [k for k in kinds if k not in KINDS]
        if bad:
            print(f"unknown kinds: {bad} (have {list(KINDS)})",
                  file=sys.stderr)
            return 2
        specs = [gen.draw_kind(kinds[i % len(kinds)], i)
                 for i in range(args.cases)]
    else:
        specs = gen.draw_many(args.cases)

    config = nvidia_config(num_cores=1)
    if args.jobs > 0 or args.resume:
        result = _run_parallel(args, specs, configs)
        if result is None:
            return 2
    else:
        deadline = (time.monotonic() + args.budget
                    if args.budget is not None else None)
        should_stop = ((lambda: time.monotonic() > deadline)
                       if deadline is not None else None)

        done = 0

        def progress(outcome) -> None:
            nonlocal done
            done += 1
            if not outcome.ok:
                print(f"[{done}/{len(specs)}] FAIL {outcome.spec.case_id}: "
                      f"{'; '.join(outcome.cell_failures)}", file=sys.stderr)

        result = run_campaign(specs, seed=args.seed, config=config,
                              configs=configs,
                              determinism_every=args.determinism_every,
                              should_stop=should_stop, progress=progress)

    print(result.render_matrix())
    print()
    print(result.stats.snapshot().render("fuzz statistics"))
    if result.truncated:
        print(f"\nbudget exhausted: {result.truncated} of {len(specs)} "
              f"cases were NOT run", file=sys.stderr)

    reproducers = []
    if result.failures and not args.no_minimize:
        for outcome in result.failures:
            def fails(spec, _configs=configs) -> bool:
                return not run_case(spec, config=config,
                                    configs=_configs).ok
            reproducers.append(minimize(outcome.spec, fails))

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, "detection_matrix.json"),
                  "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        for spec in reproducers:
            name = f"reproducer_{spec.case_id}.json"
            with open(os.path.join(args.out, name), "w") as fh:
                fh.write(spec.to_json())
        print(f"\nartifacts written to {args.out}/")

    if result.failures:
        print(f"\n{len(result.failures)} of {len(result.outcomes)} cases "
              f"violated the expectation matrix", file=sys.stderr)
        for spec in reproducers:
            print(f"  minimised reproducer: {spec.case_id} -> "
                  f"{spec.to_dict()}", file=sys.stderr)
        return 1
    print(f"\nall {len(result.outcomes)} cases match the expectation "
          f"matrix (shield: 100% detection, 0 false positives)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
