"""The differential campaign: every case through every protection config.

For each :class:`~repro.fuzz.spec.CaseSpec` the campaign executes the
same workload under six configurations and scores the observed
detections against a fixed **expectation matrix**:

=============  ========================================================
``base``       no protection; "detection" means a native illegal-address
               abort (only wildly-unmapped accesses, e.g. heap escapes)
``shield``     GPUShield (BCU + tagged pointers); must detect every
               planted attack *with correct buffer-ID attribution* and
               report zero false positives on safe cases
``swbounds``   in-kernel software guards behind the ``AccessChecker``
               seam — allocation-table range checks that block
``memcheck``   CUDA-MEMCHECK's shadow-table validation — detects but
               never blocks (global space only)
``clarmor``    clArmor canary interposer — post-launch canary scans
``gmod``       GMOD guard-thread interposer — polled canary scans
=============  ========================================================

Cells are ``always`` (tool must detect), ``never`` (tool must *not*
detect — known gaps must reproduce, not silently close) or ``maybe``
(layout-dependent; recorded but not scored).  The campaign also checks
two differential invariants on safe cases: final buffer contents are
bit-identical across all configs, and cycle counts are deterministic
per seed (same case re-run => same cycles).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.harness import WorkloadRunner
from repro.analysis.stats import StatsRegistry
from repro.baselines.canary import CanaryRunner
from repro.baselines.gmod import GmodRunner
from repro.baselines.memcheck import MemcheckChecker
from repro.baselines.swbounds import SoftwareGuardChecker
from repro.core.shield import ShieldConfig
from repro.fuzz.generator import ShieldMutator, build_workload, expected_fault
from repro.fuzz.spec import CaseSpec
from repro.gpu.config import GPUConfig, nvidia_config

CONFIG_NAMES = ("base", "shield", "swbounds", "memcheck", "clarmor", "gmod")

ALWAYS, NEVER, MAYBE = "always", "never", "maybe"


def expectation(kind: str, config: str, is_store: bool) -> str:
    """The paper-documented detection expectation for one matrix cell."""
    if kind == "safe":
        return NEVER
    if config == "shield":
        return ALWAYS                      # Tables 1 & 4: full coverage
    if config == "base":
        # Only accesses that leave mapped memory entirely fault natively;
        # the heap escape crosses its region's last mapped page.
        return ALWAYS if kind == "heap" else NEVER
    if config in ("swbounds", "memcheck"):
        # Allocation-table tools: catch accesses outside *every* region,
        # miss inter-buffer landings, and see only the global space.
        return (ALWAYS if kind in ("overflow", "underflow", "heap")
                else NEVER)
    if config in ("clarmor", "gmod"):
        # Canary tools: store-only, adjacency-only (§4.1's blind spots).
        if kind == "overflow" and is_store:
            return ALWAYS                  # margin < 64 hits the canary
        if kind == "underflow" and is_store:
            return MAYBE                   # depends on alignment slack
        return NEVER
    raise ValueError(f"unknown config {config!r}")


@dataclass
class CaseOutcome:
    """One case's observed behaviour across every config."""

    spec: CaseSpec
    detected: Dict[str, bool] = field(default_factory=dict)
    expected: Dict[str, str] = field(default_factory=dict)
    cell_failures: List[str] = field(default_factory=list)
    attribution_ok: Optional[bool] = None   # shield only, attack cases
    digests: Dict[str, str] = field(default_factory=dict)
    deterministic: Optional[bool] = None
    aborted: Dict[str, bool] = field(default_factory=dict)
    # Simulated cycles per config: covered by the campaign digest, which
    # is how --compare-engines proves the fast lane is cycle-identical.
    cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.cell_failures

    def to_dict(self, full: bool = False) -> Dict[str, object]:
        """Report form by default; ``full=True`` adds everything needed
        to reconstruct the outcome (the cross-process wire format)."""
        out: Dict[str, object] = {
            "case_id": self.spec.case_id,
            "kind": self.spec.kind,
            "manifest": self.spec.manifest(),
            "detected": dict(self.detected),
            "expected": dict(self.expected),
            "failures": list(self.cell_failures),
            "attribution_ok": self.attribution_ok,
            "deterministic": self.deterministic,
        }
        if full:
            out["spec"] = self.spec.to_dict()
            out["digests"] = dict(self.digests)
            out["aborted"] = dict(self.aborted)
            out["cycles"] = dict(self.cycles)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CaseOutcome":
        """Rebuild a full-form outcome (see ``to_dict(full=True)``)."""
        return cls(
            spec=CaseSpec.from_dict(dict(data["spec"])),
            detected=dict(data["detected"]),
            expected=dict(data["expected"]),
            cell_failures=list(data["failures"]),
            attribution_ok=data.get("attribution_ok"),
            digests=dict(data.get("digests", {})),
            deterministic=data.get("deterministic"),
            aborted=dict(data.get("aborted", {})),
            cycles=dict(data.get("cycles", {})),
        )


def _digest(runner: WorkloadRunner, spec: CaseSpec) -> str:
    """Hash of every global buffer's *data* bytes (excludes canary pads)."""
    h = hashlib.sha256()
    for name in spec.buffer_names:
        h.update(runner.session.driver.read(runner.buffers[name],
                                            spec.nbytes))
    return h.hexdigest()


def _regions(runner: WorkloadRunner, spec: CaseSpec) -> Dict[str, tuple]:
    regions = {name: (buf.va, buf.size - runner.alloc_pad)
               for name, buf in runner.buffers.items()}
    heap = runner.session.driver.heap
    regions["__heap"] = (heap.base, heap.limit)
    return regions


def _attach(runner: WorkloadRunner, checker) -> None:
    for core in runner.session.gpu.cores:
        core.pipeline.checker = checker


def _run_shield(spec: CaseSpec, workload, config: GPUConfig):
    mutator = ShieldMutator(spec)
    runner = WorkloadRunner(workload, config=config,
                            shield=ShieldConfig(enabled=True),
                            config_name="shield", seed=spec.seed & 0xFFFF,
                            allow_violations=True, launch_mutator=mutator)
    record = runner.run()
    return runner, record, mutator


def run_case(spec: CaseSpec,
             config: Optional[GPUConfig] = None,
             configs: Sequence[str] = CONFIG_NAMES,
             check_determinism: bool = False) -> CaseOutcome:
    """Run one case through the requested configs and score it."""
    spec.validate()
    config = config or nvidia_config(num_cores=1)
    seed = spec.seed & 0xFFFF
    outcome = CaseOutcome(spec=spec)
    out = outcome.detected

    for name in configs:
        workload = build_workload(spec)   # fresh: launches mutate nothing
        if name == "base":
            runner = WorkloadRunner(workload, config=config, shield=None,
                                    config_name="base", seed=seed,
                                    allow_violations=True)
            record = runner.run()
            out["base"] = record.aborted
        elif name == "shield":
            runner, record, mutator = _run_shield(spec, workload, config)
            out["shield"] = bool(runner.last_violations) or record.aborted
            if not spec.safe:
                want = expected_fault(spec, runner, mutator)
                outcome.attribution_ok = any(
                    want.matches(v) for v in runner.last_violations)
            if check_determinism:
                again, record2, _m = _run_shield(
                    spec, build_workload(spec), config)
                # Seed-plumbing invariant: the campaign seed reaches the
                # device verbatim — were the session's 0xC0FFEE default
                # shadowing it, re-runs would still agree with each
                # other while silently ignoring the case seed.
                assert again.seed == spec.seed & 0xFFFF
                assert again.session.seed == spec.seed & 0xFFFF
                outcome.deterministic = (
                    record2.cycles == record.cycles
                    and _digest(again, spec) == _digest(runner, spec))
                again.close()
        elif name in ("swbounds", "memcheck"):
            runner = WorkloadRunner(workload, config=config, shield=None,
                                    config_name=name, seed=seed,
                                    allow_violations=True)
            if name == "swbounds":
                checker = SoftwareGuardChecker(_regions(runner, spec))
                detections: Callable[[], int] = lambda: len(checker.failures)
            else:
                checker = MemcheckChecker(_regions(runner, spec))
                detections = lambda: len(checker.detections)
            _attach(runner, checker)
            record = runner.run()
            out[name] = detections() > 0
        elif name in ("clarmor", "gmod"):
            tool_cls = CanaryRunner if name == "clarmor" else GmodRunner
            tool = tool_cls(workload, config=config, seed=seed)
            tool.runner.allow_violations = True
            record = tool.run()
            out[name] = len(tool.detections) > 0
            runner = tool.runner
        else:
            raise ValueError(f"unknown config {name!r}")
        outcome.aborted[name] = record.aborted
        outcome.cycles[name] = record.cycles
        if spec.safe:
            outcome.digests[name] = _digest(runner, spec)
        # Digests are read; the device can go back to the warm pool for
        # the next config/case to reset-and-reuse.
        runner.close()

    _score(spec, outcome, configs)
    return outcome


def _score(spec: CaseSpec, outcome: CaseOutcome,
           configs: Sequence[str]) -> None:
    for name in configs:
        cell = expectation(spec.kind, name, spec.attack_is_store)
        outcome.expected[name] = cell
        got = outcome.detected[name]
        if cell == ALWAYS and not got:
            outcome.cell_failures.append(
                f"{name}: expected detection of {spec.kind}, got none")
        elif cell == NEVER and got:
            label = ("false positive on safe case" if spec.safe
                     else f"gap closed unexpectedly for {spec.kind}")
            outcome.cell_failures.append(f"{name}: {label}")
    if "shield" in configs and not spec.safe and not outcome.attribution_ok:
        outcome.cell_failures.append(
            "shield: violation reported without correct attribution "
            f"(expected {spec.victim_name})")
    if spec.safe and len(set(outcome.digests.values())) > 1:
        outcome.cell_failures.append(
            "differential: safe-case buffer contents diverge across "
            f"configs: { {k: v[:12] for k, v in outcome.digests.items()} }")
    if outcome.deterministic is False:
        outcome.cell_failures.append(
            "determinism: shield re-run changed cycles or contents")


@dataclass
class CampaignResult:
    """Aggregate of one campaign run."""

    seed: int
    outcomes: List[CaseOutcome] = field(default_factory=list)
    stats: Optional[StatsRegistry] = None
    truncated: int = 0          # cases skipped by the --budget cap

    @property
    def failures(self) -> List[CaseOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def matrix(self) -> Dict[str, Dict[str, str]]:
        """kind -> config -> ``detected/total`` counts."""
        hits: Dict[str, Dict[str, int]] = {}
        totals: Dict[str, int] = {}
        for o in self.outcomes:
            totals[o.spec.kind] = totals.get(o.spec.kind, 0) + 1
            row = hits.setdefault(o.spec.kind, {})
            for cfg, got in o.detected.items():
                row[cfg] = row.get(cfg, 0) + (1 if got else 0)
        return {kind: {cfg: f"{row.get(cfg, 0)}/{totals[kind]}"
                       for cfg in CONFIG_NAMES if cfg in row}
                for kind, row in hits.items()}

    def render_matrix(self) -> str:
        matrix = self.matrix()
        configs = [c for c in CONFIG_NAMES
                   if any(c in row for row in matrix.values())]
        width = max([len(k) for k in matrix] + [12])
        lines = ["detection matrix (detected/total)",
                 "-" * (width + 11 * len(configs))]
        lines.append(" " * width + "".join(f"{c:>11}" for c in configs))
        for kind in sorted(matrix):
            row = matrix[kind]
            lines.append(f"{kind:<{width}}"
                         + "".join(f"{row.get(c, '-'):>11}" for c in configs))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "cases": len(self.outcomes),
            "truncated": self.truncated,
            "ok": self.ok,
            "matrix": self.matrix(),
            "failures": [o.to_dict() for o in self.failures],
        }


def init_campaign_counters(stats: StatsRegistry,
                           configs: Sequence[str]) -> Dict[str, Dict]:
    """Zero the campaign counter tree; returns the live counter dicts.

    Shared between the serial loop and each parallel shard so every
    execution mode bumps the *same* counter paths — what makes merged
    per-shard snapshots sum to exactly the serial totals.
    """
    campaign = stats.counters("fuzz.campaign")
    campaign.update({"cases": 0, "safe": 0, "attacks": 0,
                     "expectation_failures": 0, "truncated": 0})
    per_config = {name: stats.counters(f"fuzz.configs.{name}")
                  for name in configs}
    for name in configs:
        per_config[name].update(
            {"detected": 0, "missed": 0, "false_positives": 0})
    return {"campaign": campaign, "per_config": per_config}


def tally_outcome(outcome: CaseOutcome, counters: Dict[str, Dict]) -> None:
    """Fold one case outcome into the campaign counters."""
    spec = outcome.spec
    campaign, per_config = counters["campaign"], counters["per_config"]
    campaign["cases"] += 1
    campaign["safe" if spec.safe else "attacks"] += 1
    if not outcome.ok:
        campaign["expectation_failures"] += 1
    for name, got in outcome.detected.items():
        if spec.safe:
            if got:
                per_config[name]["false_positives"] += 1
        elif got:
            per_config[name]["detected"] += 1
        else:
            per_config[name]["missed"] += 1


def run_campaign(specs: Sequence[CaseSpec], *, seed: int = 0,
                 config: Optional[GPUConfig] = None,
                 configs: Sequence[str] = CONFIG_NAMES,
                 determinism_every: int = 0,
                 index_base: int = 0,
                 stats: Optional[StatsRegistry] = None,
                 should_stop: Optional[Callable[[], bool]] = None,
                 progress: Optional[Callable[[CaseOutcome], None]] = None,
                 ) -> CampaignResult:
    """Execute ``specs`` through every config and aggregate the scores.

    ``determinism_every=N`` re-runs every Nth case's shield config to
    check cycle/content determinism (0 disables); ``index_base`` offsets
    the "Nth" arithmetic so a shard covering cases ``[base, base+k)`` of
    a larger campaign re-checks exactly the cases the serial run would.
    ``should_stop`` is polled between cases (the CLI's ``--budget``
    wall-clock cap); skipped cases are *reported* as truncation, never
    silently dropped.
    """
    stats = stats or StatsRegistry()
    counters = init_campaign_counters(stats, configs)

    result = CampaignResult(seed=seed, stats=stats)
    for i, spec in enumerate(specs):
        if should_stop is not None and should_stop():
            result.truncated = len(specs) - i
            counters["campaign"]["truncated"] = result.truncated
            break
        check_det = (bool(determinism_every)
                     and (index_base + i) % determinism_every == 0)
        outcome = run_case(spec, config=config, configs=configs,
                           check_determinism=check_det)
        result.outcomes.append(outcome)
        tally_outcome(outcome, counters)
        if progress is not None:
            progress(outcome)
    return result
