"""Fuzz-case specifications: pure data, JSON round-trippable.

A :class:`CaseSpec` fully determines one generated workload — buffers,
launch geometry, the benign phase, and (for attack kinds) the planted
violation with its exact relative ground truth.  Keeping the spec pure
data is what makes reproducer serialisation and corpus minimisation
trivial: shrinking is `dataclasses.replace` + re-validation, and a
failing case ships as a small JSON blob any pytest can replay.

Attack kinds (paper Tables 1 & 4, §6.1):

=================  =====================================================
``safe``           no violation; an in-bounds indirect probe keeps the
                   runtime-checked path exercised (false-positive test)
``overflow``       store/load past the victim's end, within the 512B
                   alignment slack (margin < 64 so canary tools see it)
``underflow``      store/load before the victim's base (victim index >= 1
                   keeps the address mapped)
``inter_buffer``   lands *inside another buffer's data* — invisible to
                   allocation-table tools (MEMCHECK) and canary tools
``canary_jump``    far store over every canary region into another
                   buffer's interior — clArmor/GMOD's blind spot (§4.1)
``heap``           device-malloc pointer offset past the heap limit
``local_var``      per-thread local array index escaping into the next
                   local variable's region
``stale_replay``   a tagged pointer captured from launch N replayed into
                   launch N+1 (per-kernel keys must reject it)
``forged_id``      the encrypted 14-bit ID payload is bit-flipped on an
                   otherwise in-bounds pointer
=================  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List

KINDS = (
    "safe",
    "overflow",
    "underflow",
    "inter_buffer",
    "canary_jump",
    "heap",
    "local_var",
    "stale_replay",
    "forged_id",
)

ATTACK_KINDS = tuple(k for k in KINDS if k != "safe")

#: Kinds whose attack access is always a store (load variants would be
#: meaningless or are deliberately excluded to keep the matrix crisp).
STORE_ONLY_KINDS = frozenset(
    {"canary_jump", "heap", "local_var", "stale_replay", "forged_id"})

#: OOB margins are kept under the smallest canary pad (GMOD's 64 bytes)
#: so overflow stores *must* be caught by canary tools — their
#: documented coverage, which the campaign asserts still reproduces.
MAX_MARGIN = 56

_SPEC_VERSION = 1


@dataclass(frozen=True)
class CaseSpec:
    """One generated case.  All sizes in elements/bytes as noted."""

    case_id: str
    kind: str
    seed: int                 # generator sub-seed (recorded for audit)
    elems: int                # f32 elements per global buffer (all equal)
    nbuf: int                 # global buffers b0..b{nbuf-1}
    victim: int               # index of the attacked buffer
    target: int               # landing buffer (inter_buffer/canary_jump)
    margin: int               # OOB byte distance; *words* for local_var
    inner: int                # byte offset inside the target buffer
    probe: int                # in-bounds probe element index
    attack_is_store: bool
    benign_rounds: int        # streaming rounds over the buffer ring
    workgroups: int
    wg_size: int
    local_words: int          # words/thread of each local var (local_var)

    # -- derived -----------------------------------------------------------

    @property
    def safe(self) -> bool:
        return self.kind == "safe"

    @property
    def nbytes(self) -> int:
        """Declared byte size of every global buffer."""
        return self.elems * 4

    @property
    def total_threads(self) -> int:
        return self.workgroups * self.wg_size

    @property
    def buffer_names(self) -> List[str]:
        return [f"b{i}" for i in range(self.nbuf)]

    @property
    def victim_name(self) -> str:
        if self.kind == "heap":
            return "__heap"
        if self.kind == "local_var":
            return "__local_v1"
        return f"b{self.victim}"

    @property
    def race_verdict(self) -> str:
        """The intra-kernel race verdict this case has *by construction*.

        Only safe cases promise race-freedom, and only because the
        generator reserves the probe slot: the benign phase writes
        ``b0[gtid]`` for every live thread, so a thread-0 probe of
        ``b0[probe]`` is concurrency-free exactly when the probe hits
        thread 0's own slot or a slot past every live thread.  Attack
        kinds touch foreign regions on purpose and make no promise.
        The shadow-memory detector verifies this claim dynamically
        (``repro.racedetect.scan.scan_case``).
        """
        if self.kind != "safe":
            return "may-race"
        limit = min(self.elems, self.total_threads)
        if self.benign_rounds == 0 or self.probe == 0 or self.probe >= limit:
            return "race-free"
        return "may-race"

    # -- invariants --------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` unless every cross-field invariant holds.

        The invariants encode the *determinism* of the expectation
        matrix: e.g. the alignment-slack rule below guarantees that an
        overflow/underflow lands in unowned slack for allocation-table
        tools (MEMCHECK, software guards) in every config, instead of
        silently crossing into the next buffer for some sizes.
        """
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}")
        if not 1 <= self.nbuf <= 8:
            raise ValueError(f"nbuf {self.nbuf} out of range")
        if not 0 <= self.victim < self.nbuf:
            raise ValueError("victim index out of range")
        if self.elems < 2:
            raise ValueError("need at least two elements per buffer")
        slack = (512 - (self.nbytes % 512)) % 512
        if slack < MAX_MARGIN + 8:
            # nbytes too close to (or at) a 512B multiple: the OOB margin
            # could land inside the next allocation for some tools.
            raise ValueError(
                f"elems {self.elems} leaves only {slack}B of alignment "
                f"slack; detection would depend on neighbour layout")
        if self.workgroups < 1:
            raise ValueError("workgroups must be positive")
        if self.wg_size < 32 or self.wg_size % 32:
            raise ValueError("wg_size must be a positive warp multiple")
        if not 0 <= self.benign_rounds <= 4:
            raise ValueError("benign_rounds out of range")
        if not 0 <= self.probe < self.elems:
            raise ValueError("probe index out of bounds")
        if self.kind in STORE_ONLY_KINDS and not self.attack_is_store:
            raise ValueError(f"{self.kind} cases must attack with a store")

        if self.kind in ("overflow", "underflow"):
            if not 4 <= self.margin <= MAX_MARGIN or self.margin % 4:
                raise ValueError(f"bad OOB margin {self.margin}")
        if self.kind == "underflow" and self.victim == 0:
            # The region's very first buffer has no mapped page before it;
            # an underflow there would natively fault and muddy the
            # differential comparison.
            raise ValueError("underflow victim must not be buffer 0")
        if self.kind in ("inter_buffer", "canary_jump"):
            if not 0 <= self.target < self.nbuf or self.target == self.victim:
                raise ValueError("target must name a different buffer")
            if not 0 <= self.inner <= self.nbytes - 4 or self.inner % 4:
                raise ValueError(f"bad interior offset {self.inner}")
            if (self.kind == "canary_jump" and self.nbuf >= 3
                    and abs(self.target - self.victim) < 2):
                raise ValueError("canary_jump must skip at least one buffer")
        if self.kind == "heap" and (self.margin % 4 or self.margin < 0):
            raise ValueError(f"bad heap margin {self.margin}")
        if self.kind == "local_var":
            if self.local_words < 1:
                raise ValueError("local_words must be positive")
            if not 0 <= self.margin < self.local_words:
                # Keep the escape inside v2's (mapped) region.
                raise ValueError("local margin must stay within v2")

    # -- manifest ----------------------------------------------------------

    def manifest(self) -> Dict[str, object]:
        """The machine-readable attack manifest for this case.

        Ground truth is *relative* (offsets from the victim's base):
        absolute addresses depend on each config's allocator state, and
        the campaign resolves them per run when checking attribution.
        """
        out: Dict[str, object] = {
            "case_id": self.case_id,
            "kind": self.kind,
            "safe": self.safe,
            "victim": self.victim_name,
            "attack_is_store": self.attack_is_store,
        }
        if self.kind in ("overflow", "underflow"):
            sign = 1 if self.kind == "overflow" else -1
            base = self.nbytes if self.kind == "overflow" else 0
            out["victim_offset"] = base + sign * self.margin
        elif self.kind in ("inter_buffer", "canary_jump"):
            out["lands_in"] = f"b{self.target}"
            out["target_offset"] = self.inner
        elif self.kind == "heap":
            out["heap_offset_past_limit"] = 4096 + self.margin
        elif self.kind == "local_var":
            out["word_index"] = self.local_words + self.margin
        elif self.kind in ("stale_replay", "forged_id", "safe"):
            out["victim_offset"] = self.probe * 4
        return out

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["version"] = _SPEC_VERSION
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CaseSpec":
        data = dict(data)
        version = data.pop("version", _SPEC_VERSION)
        if version != _SPEC_VERSION:
            raise ValueError(f"unsupported spec version {version}")
        spec = cls(**data)   # type: ignore[arg-type]
        spec.validate()
        return spec

    @classmethod
    def from_json(cls, blob: str) -> "CaseSpec":
        return cls.from_dict(json.loads(blob))

    def with_(self, **changes) -> "CaseSpec":
        """`dataclasses.replace` that keeps the frozen type."""
        return replace(self, **changes)
