"""The fuzz campaign on the parallel runner: shard, execute, merge.

A campaign of N cases becomes a handful of ``fuzz.shard`` jobs, each a
contiguous slice of the serial case order.  Shards are fully
self-contained (specs travel as JSON in the job payload) and every case
seeds its own session, so a shard's outcomes are independent of which
process runs it — the merged campaign is **identical to the serial
run**: same outcome order, same detection matrix, same counter totals
(per-shard stats snapshots sum back to the serial numbers).

``merge_campaign`` consumes job results in shard order regardless of
completion order, which together with the runner's checkpoint journal
gives the resume guarantee: a campaign killed mid-run and resumed
merges bit-identically to one that never stopped.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import StatsRegistry
from repro.fuzz.campaign import (CONFIG_NAMES, CampaignResult, CaseOutcome,
                                 run_campaign)
from repro.fuzz.spec import CaseSpec
from repro.gpu.config import nvidia_config
from repro.runner.job import JobContext, JobResult, JobSpec
from repro.runner.shard import default_shard_count, plan_shards

SHARD_KIND = "fuzz.shard"

#: Generous per-shard wall-clock cap: a shard that wedges (infinite
#: loop in a generated kernel) is killed and retried rather than
#: stalling the campaign.
DEFAULT_SHARD_TIMEOUT = 900.0


def plan_fuzz_shards(specs: Sequence[CaseSpec], *, seed: int,
                     jobs: int, shards: Optional[int] = None,
                     configs: Sequence[str] = CONFIG_NAMES,
                     determinism_every: int = 0,
                     timeout: float = DEFAULT_SHARD_TIMEOUT,
                     max_retries: int = 1) -> List[JobSpec]:
    """Cut a campaign into contiguous, self-contained shard jobs."""
    shards = shards or default_shard_count(len(specs), jobs)
    plan: List[JobSpec] = []
    for shard in plan_shards(len(specs), shards):
        chunk = specs[shard.start:shard.stop]
        plan.append(JobSpec(
            job_id=f"fuzz-{shard.index:04d}",
            kind=SHARD_KIND,
            seed=seed,
            timeout=timeout,
            max_retries=max_retries,
            retry_backoff=0.5,
            payload={
                "index_base": shard.start,
                "cases": [s.to_dict() for s in chunk],
                "configs": list(configs),
                "determinism_every": determinism_every,
            }))
    return plan


def run_shard_job(payload: dict, ctx: JobContext) -> dict:
    """Worker entrypoint: run one contiguous campaign slice.

    Campaign counters land on ``ctx.stats`` (the per-worker registry the
    engine snapshots and merges); outcomes return in full wire form.
    """
    specs = [CaseSpec.from_dict(d) for d in payload["cases"]]
    result = run_campaign(
        specs,
        seed=ctx.spec.seed,
        config=nvidia_config(num_cores=1),
        configs=tuple(payload["configs"]),
        determinism_every=int(payload["determinism_every"]),
        index_base=int(payload["index_base"]),
        stats=ctx.stats)
    return {
        "index_base": payload["index_base"],
        "outcomes": [o.to_dict(full=True) for o in result.outcomes],
        "truncated": result.truncated,
    }


def merge_campaign(results: Sequence[JobResult], *, seed: int,
                   ) -> CampaignResult:
    """Fold shard job results back into one serial-order campaign.

    Ordering key is each shard's ``index_base`` (carried in the result
    payload), so merging is independent of completion order.  A shard
    that failed terminally raises — the campaign's integrity guarantee
    is all-cases-accounted-for, never silent holes.
    """
    failed = [r for r in results if not r.ok]
    if failed:
        detail = "; ".join(f"{r.job_id}: {r.status} ({r.error})"
                           for r in failed)
        raise RuntimeError(f"{len(failed)} fuzz shard(s) failed "
                           f"terminally: {detail}")

    stats = StatsRegistry()
    for result in results:
        # device.cache.* / device.pool.* are process-local scheduling
        # telemetry (how many warm hits and evictions each worker
        # happened to get), not a workload observable — folding them in
        # would make the merged campaign differ from the serial run by
        # construction.
        stats.merge({k: v for k, v in result.stats.items()
                     if not k.startswith(("device.cache.",
                                          "device.pool."))})

    merged = CampaignResult(seed=seed, stats=stats)
    ordered = sorted(results, key=lambda r: int(r.payload["index_base"]))
    for result in ordered:
        merged.outcomes.extend(CaseOutcome.from_dict(o)
                               for o in result.payload["outcomes"])
        merged.truncated += int(result.payload.get("truncated", 0))
    return merged


def campaign_digest(result: CampaignResult) -> str:
    """A stable digest of everything the campaign observed.

    Used by tests and the run manifest to state bit-identity between
    serial, parallel, and interrupted-then-resumed executions.
    """
    import hashlib
    blob = json.dumps(
        {"matrix": result.matrix(), "truncated": result.truncated,
         "outcomes": [o.to_dict(full=True) for o in result.outcomes]},
        sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()
