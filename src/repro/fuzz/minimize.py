"""Greedy corpus minimisation for failing fuzz cases.

Given a failing :class:`~repro.fuzz.spec.CaseSpec` and a predicate
("does this spec still fail?"), shrink the spec one field at a time,
keeping any change that preserves the failure, until a full pass over
all shrink candidates yields no progress (first-improvement fixpoint).
Every candidate is re-validated, so minimisation can never produce a
spec outside the generator's invariants — a minimised reproducer is
always replayable by the same campaign code path.
"""

from __future__ import annotations

from typing import Callable, Iterator, List

from repro.fuzz.campaign import CONFIG_NAMES, run_case
from repro.fuzz.generator import nearest_valid_elems
from repro.fuzz.spec import CaseSpec

Predicate = Callable[[CaseSpec], bool]


def _candidates(spec: CaseSpec) -> Iterator[CaseSpec]:
    """Strictly-simpler variants of ``spec``, cheapest shrinks first."""
    if spec.benign_rounds > 0:
        yield spec.with_(benign_rounds=0)
    if spec.workgroups > 1:
        yield spec.with_(workgroups=1)
    if spec.wg_size > 32:
        yield spec.with_(wg_size=32)
    if spec.probe > 0:
        yield spec.with_(probe=0)
    # Drop trailing buffers (victim/target indices must survive).
    floor = max(2, spec.victim + 1, spec.target + 1,
                3 if spec.kind == "canary_jump" else 0)
    if spec.nbuf > floor:
        yield spec.with_(nbuf=floor)
    # Halve the element count toward the smallest valid size.
    if spec.elems > 16:
        smaller = nearest_valid_elems(spec.elems // 2)
        if smaller < spec.elems:
            changes = {"elems": smaller}
            if spec.probe >= smaller:
                changes["probe"] = 0
            if spec.inner >= smaller * 4:
                changes["inner"] = 0
            yield spec.with_(**changes)
    if spec.kind in ("overflow", "underflow") and spec.margin > 4:
        yield spec.with_(margin=4)
    if spec.kind == "heap" and spec.margin > 0:
        yield spec.with_(margin=0)
    if spec.kind == "local_var":
        if spec.local_words > 1:
            yield spec.with_(local_words=1,
                             margin=min(spec.margin, 0))
        elif spec.margin > 0:
            yield spec.with_(margin=0)
    if spec.inner > 0:
        yield spec.with_(inner=0)


def minimize(spec: CaseSpec, predicate: Predicate,
             max_steps: int = 200) -> CaseSpec:
    """Shrink ``spec`` while ``predicate`` keeps holding.

    ``predicate(spec)`` must return True for the original spec (asserted)
    and for every accepted shrink.  Candidates that fail validation are
    skipped silently; ``max_steps`` bounds total predicate evaluations.
    """
    if not predicate(spec):
        raise ValueError("predicate does not hold on the original spec")
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(spec):
            try:
                candidate.validate()
            except ValueError:
                continue
            steps += 1
            if predicate(candidate):
                spec = candidate
                improved = True
                break           # restart from the shrunk spec
            if steps >= max_steps:
                break
    return spec


def still_fails(configs: List[str] = None) -> Predicate:
    """The standard predicate: the case still violates its expectation
    matrix when re-run through the campaign."""
    def predicate(spec: CaseSpec) -> bool:
        outcome = run_case(spec, configs=configs or CONFIG_NAMES)
        return not outcome.ok
    return predicate
