"""GPU driver model: allocation, SVM, heap, and GPUShield kernel setup.

The driver is the trusted software half of GPUShield (paper §5.4): it
owns device memory, assigns random unique buffer IDs, encrypts them,
tags pointers, and materialises the per-kernel RBT in device memory.
"""

from repro.driver.allocator import Buffer, DeviceAllocator, MemoryRegions
from repro.driver.heap import DeviceHeap
from repro.driver.svm import SvmMailbox
from repro.driver.driver import GpuDriver, LaunchContext

__all__ = [
    "Buffer",
    "DeviceAllocator",
    "MemoryRegions",
    "DeviceHeap",
    "SvmMailbox",
    "GpuDriver",
    "LaunchContext",
]
