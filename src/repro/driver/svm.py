"""Shared Virtual Memory helpers (paper §2.1, §3.1).

SVM buffers live in the same physical store the GPU writes, so host code
observes device writes directly — including out-of-bounds corruption
(Figure 4).  :class:`SvmMailbox` is the host-GPU signalling channel of
§5.5.2: the BCU appends violation records and the host polls them while
the kernel is still running.
"""

from __future__ import annotations

from typing import List

from repro.core.violations import ViolationRecord
from repro.driver.allocator import Buffer, DeviceAllocator


class SvmMailbox:
    """A ring of violation records in an SVM buffer shared with the host."""

    def __init__(self, allocator: DeviceAllocator, capacity: int = 64):
        self.record_size = ViolationRecord.wire_size()
        self.capacity = capacity
        # Header: 8-byte write counter, then the record slots.
        self.buffer: Buffer = allocator.malloc(
            8 + capacity * self.record_size, name="__svm_mailbox", svm=True)
        self._allocator = allocator

    def _count(self) -> int:
        blob = self._allocator.read_buffer(self.buffer, 0, 8)
        return int.from_bytes(blob, "little")

    def device_append(self, payload: bytes) -> None:
        """Called by the BCU under the SIGNAL_HOST policy."""
        count = self._count()
        slot = count % self.capacity
        self._allocator.write_buffer(
            self.buffer, 8 + slot * self.record_size, payload)
        self._allocator.write_buffer(
            self.buffer, 0, (count + 1).to_bytes(8, "little"))

    def host_poll(self) -> List[ViolationRecord]:
        """Host-side read of all records currently in the mailbox."""
        count = self._count()
        available = min(count, self.capacity)
        records = []
        start = count - available
        for i in range(start, count):
            slot = i % self.capacity
            blob = self._allocator.read_buffer(
                self.buffer, 8 + slot * self.record_size, self.record_size)
            records.append(ViolationRecord.unpack(blob))
        return records
