"""The device heap: dynamic allocation from GPU kernels (paper §5.2.1).

The heap is one contiguous region whose maximum size is preset before
context creation (``cudaDeviceSetLimit(cudaLimitMallocHeapSize)``), is
persistent for the lifetime of the GPU context, and is shared between
kernels in that context.  GPUShield protects it as a *single* region: one
preassigned buffer ID covers the whole heap, and every pointer returned
by device-side ``malloc`` carries that ID.

Dynamic allocation on real GPUs is very slow because massive numbers of
threads serialise on the allocator (the paper measures 4.9–63.7×
slowdowns).  :meth:`alloc_cost_cycles` models that contention and is used
by the core when executing ``malloc`` instructions; the ablation bench
``bench_ablation_heap`` reproduces the slowdown study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.gpu.memory import AddressSpace, PageFlags
from repro.utils.bitops import round_up

DEFAULT_HEAP_LIMIT = 8 << 20   # cudaLimitMallocHeapSize default (8MB)


@dataclass
class HeapStats:
    allocations: int = 0
    bytes_allocated: int = 0
    contended_allocations: int = 0


class DeviceHeap:
    """A bump allocator over the heap region with a contention cost model."""

    # Cost model: a device-side malloc takes a base number of cycles for
    # the allocator's critical section; lanes of the same warp serialise,
    # as do concurrently allocating warps (approximated by the caller
    # passing the number of co-resident warps).
    BASE_COST = 400
    PER_LANE_COST = 120

    def __init__(self, space: AddressSpace, base: int,
                 limit: int = DEFAULT_HEAP_LIMIT, align: int = 16):
        self.space = space
        self.base = base
        self.limit = limit
        self.align = align
        self._cursor = base
        self.stats = HeapStats()
        self._mapped = False
        self._initial_limit = limit

    def set_limit(self, limit: int) -> None:
        """``cudaDeviceSetLimit``: only legal before first use (§5.2.1)."""
        if self._mapped:
            raise AllocationError("heap limit must be set before context use")
        self.limit = limit

    def _ensure_mapped(self) -> None:
        if not self._mapped:
            self.space.map_range(self.base, self.limit, PageFlags())
            self._mapped = True

    @property
    def size(self) -> int:
        return self.limit

    @property
    def used(self) -> int:
        return self._cursor - self.base

    def device_malloc(self, size: int) -> int:
        """One thread's ``malloc``; returns the raw (untagged) address."""
        self._ensure_mapped()
        if size <= 0:
            raise AllocationError(f"bad device malloc size {size}")
        addr = round_up(self._cursor, self.align)
        if addr + size > self.base + self.limit:
            raise AllocationError("device heap exhausted")
        self._cursor = addr + size
        self.stats.allocations += 1
        self.stats.bytes_allocated += size
        return addr

    def alloc_cost_cycles(self, active_lanes: int,
                          resident_warps: int = 1,
                          grid_warps: int = 0) -> int:
        """Cycles one warp's malloc burst costs (serialisation model).

        The device allocator is a global critical section: lanes of the
        warp serialise, and the expected queueing delay grows with the
        number of warps allocating *anywhere on the GPU* (``grid_warps``)
        — the paper measures a near-linear 4.9x -> 63.7x slowdown as the
        grid grows from 1K to 16K blocks.
        """
        if active_lanes > 1 or resident_warps > 1:
            self.stats.contended_allocations += 1
        backlog_scale = 1.0 + grid_warps / 64.0
        serialised = int(active_lanes * self.PER_LANE_COST * backlog_scale)
        contention = max(0, resident_warps - 1) * self.PER_LANE_COST // 2
        return self.BASE_COST + serialised + contention

    def reset(self) -> None:
        """Drop all device allocations (context teardown).

        Also unmaps the heap pages and restores the construction-time
        limit, so a subsequent ``set_limit`` is legal again — a reset
        device behaves exactly like a freshly created context.
        """
        if self._mapped:
            self.space.unmap_range(self.base, self.limit)
        self._cursor = self.base
        self.stats = HeapStats()
        self._mapped = False
        self.limit = self._initial_limit

    def state_snapshot(self) -> dict:
        """Architectural heap state for device snapshot/restore."""
        return {"cursor": self._cursor, "limit": self.limit,
                "mapped": self._mapped,
                "stats": (self.stats.allocations,
                          self.stats.bytes_allocated,
                          self.stats.contended_allocations)}

    def restore_state(self, state: dict) -> None:
        self._cursor = state["cursor"]
        self.limit = state["limit"]
        self._mapped = state["mapped"]
        self.stats = HeapStats(*state["stats"])
