"""Kernel setup by the GPU driver (paper §5.4, Figures 9 & 10).

On every launch the driver:

1. runs (or reuses) the compiler's static bounds analysis to obtain the
   BAT attached to the kernel binary;
2. lays out local-memory variables (interleaved per-thread words) and
   registers each as a protected region;
3. draws a fresh per-kernel secret key and assigns a *random but unique*
   14-bit ID to every region (buffers, local variables, the heap);
4. materialises the RBT image in driver-internal device pages that normal
   kernel accesses cannot touch;
5. tags every pointer argument: Type 1 when the BAT proved it safe,
   Type 3 on base+offset (Intel-style) addressing with power-of-two
   padding, Type 2 (encrypted ID) otherwise;
6. at kernel completion, drains the violation log and — for Type 3
   buffers — verifies the canary bytes written into the padding.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.compiler.bat import BoundsAnalysisTable
from repro.compiler.dataflow import LaunchBounds
from repro.compiler.static_bounds import StaticBoundsChecker
from repro.core.bcu import KernelSecurityContext
from repro.core.bounds import Bounds, RegionBoundsTable, RBT_ENTRIES
from repro.core.crypto import IdCipher
from repro.core.pointer import (
    PointerType,
    make_base_pointer,
    make_offset_pointer,
    make_unprotected_pointer,
)
from repro.core.shield import GPUShield, ShieldConfig
from repro.core.violations import ViolationRecord
from repro.driver.allocator import Buffer, DeviceAllocator, MemoryRegions
from repro.driver.heap import DeviceHeap
from repro.errors import LaunchError
from repro.gpu.config import GPUConfig
from repro.gpu.memory import AddressSpace, PhysicalMemory
from repro.isa.program import Kernel

_CANARY_BYTE = 0xA5

ArgValue = Union[Buffer, int, float]


@dataclass
class LaunchContext:
    """Everything the GPU needs to execute one prepared kernel launch."""

    kernel: Kernel
    workgroups: int
    wg_size: int
    kernel_id: int
    arg_values: Dict[str, int] = field(default_factory=dict)
    security: Optional[KernelSecurityContext] = None
    bat: Optional[BoundsAnalysisTable] = None
    shield_enabled: bool = False
    heap_pointer_tagger: Optional[object] = None   # callable addr -> tagged
    local_buffers: Dict[str, Buffer] = field(default_factory=dict)
    rbt_buffer: Optional[Buffer] = None
    type3_buffers: List[Buffer] = field(default_factory=list)
    pointer_types: Dict[str, PointerType] = field(default_factory=dict)
    finished: bool = False

    @property
    def total_threads(self) -> int:
        return self.workgroups * self.wg_size

    def initial_registers(self) -> Dict[int, int]:
        """reg index -> entry value for every kernel/local argument."""
        return {self.kernel.arg_regs[name]: value
                for name, value in self.arg_values.items()}


class GpuDriver:
    """The trusted driver: owns device memory and performs §5.4's setup."""

    def __init__(self, config: GPUConfig,
                 shield: Optional[GPUShield] = None,
                 seed: int = 0xC0FFEE,
                 regions: Optional[MemoryRegions] = None):
        self.config = config
        self.shield = shield if shield is not None else GPUShield(
            ShieldConfig(enabled=False))
        self.memory = PhysicalMemory()
        self.space = AddressSpace(self.memory, page_size=config.page_size)
        self.regions = regions or MemoryRegions()
        pow2_pad = (self.shield.enabled
                    and config.addressing == "method_c"
                    and self.shield.config.bcu.type3_enabled)
        self.allocator = DeviceAllocator(
            self.memory, self.space, regions=self.regions,
            alignment=config.alignment, pow2_pad=pow2_pad)
        self.heap = DeviceHeap(self.space, self.regions.heap)
        self.checker = StaticBoundsChecker(
            enabled=self.shield.config.static_analysis)
        # SIGNAL_HOST reporting: violations are mirrored into an SVM
        # mailbox the host can poll mid-kernel (§5.5.2).
        self.mailbox = None
        if (self.shield.enabled
                and self.shield.config.policy.name == "SIGNAL_HOST"):
            from repro.driver.svm import SvmMailbox
            self.mailbox = SvmMailbox(self.allocator)
            self.shield.log.mailbox_write = self.mailbox.device_append
        self._seed = seed
        self._rng = random.Random(seed)
        self._kernel_counter = 0
        # Static analysis is per (kernel, launch shape): cache the BAT so
        # many-launch workloads (streamcluster's 1000 invocations) do not
        # re-run the compiler each time — matching the paper, where the
        # BAT is computed once and attached to the binary.
        self._bat_cache: Dict[tuple, BoundsAnalysisTable] = {}

    # -- device lifecycle ---------------------------------------------------------

    @property
    def seed(self) -> int:
        return self._seed

    def reseed(self, seed: int) -> None:
        """Restart the driver's secret-key/ID RNG from ``seed``, exactly
        as a freshly constructed driver would draw it."""
        self._seed = seed
        self._rng.seed(seed)

    def state_snapshot(self) -> dict:
        """Capture the driver-visible architectural state.

        Covers device memory contents, the page table, allocator
        cursors/allocations, the heap, the RNG stream, the kernel
        counter and any undrained violation records.  Buffer objects
        are captured by identity (the allocation list is append-only),
        so a restore invalidates snapshots taken after it.
        """
        return {
            "chunks": self.memory.snapshot_chunks(),
            "mem_counters": (self.memory.bytes_read,
                             self.memory.bytes_written),
            "pages": self.space.pages_snapshot(),
            "cursors": self.allocator.cursors_snapshot(),
            "allocations": [(buf, buf.freed)
                            for buf in self.allocator.allocations],
            "heap": self.heap.state_snapshot(),
            "rng": self._rng.getstate(),
            "kernel_counter": self._kernel_counter,
            "violations": list(self.shield.log.records),
        }

    def restore_state(self, state: dict) -> None:
        """Re-install a :meth:`state_snapshot` image.

        Every container is mutated in place (the fast engine binds the
        page dict and chunk store at construction).  The BAT cache is
        dropped: it keys on ``id(kernel)``, and a restored driver may
        see recycled ids for different kernel objects.
        """
        self.memory.restore_chunks(state["chunks"])
        self.memory.bytes_read, self.memory.bytes_written = \
            state["mem_counters"]
        self.space.restore_pages(state["pages"])
        self.allocator.restore_cursors(state["cursors"])
        saved = state["allocations"]
        del self.allocator.allocations[len(saved):]
        for buf, freed in saved:
            buf.freed = freed
        self.heap.restore_state(state["heap"])
        self._rng.setstate(state["rng"])
        self._kernel_counter = state["kernel_counter"]
        self._bat_cache.clear()
        self.shield.log.records.clear()
        self.shield.log.records.extend(state["violations"])

    # -- host memory API ---------------------------------------------------------

    def malloc(self, size: int, *, name: str = "",
               read_only: bool = False) -> Buffer:
        """``cudaMalloc``: a device-only global buffer."""
        return self.allocator.malloc(size, name=name, read_only=read_only)

    def malloc_managed(self, size: int, *, name: str = "") -> Buffer:
        """``cudaMallocManaged``: an SVM buffer visible to the host."""
        return self.allocator.malloc(size, name=name, svm=True)

    def malloc_const(self, size: int, *, name: str = "") -> Buffer:
        """Constant memory: read-only, served by per-core constant
        caches (Table 1: no overflow possible)."""
        return self.allocator.malloc(size, name=name, read_only=True,
                                     region="constant")

    def malloc_texture(self, size: int, *, name: str = "") -> Buffer:
        """Texture/surface memory: read-only, texture-cache path."""
        return self.allocator.malloc(size, name=name, read_only=True,
                                     region="texture")

    def free(self, buffer: Buffer) -> None:
        self.allocator.free(buffer)

    def write(self, buffer: Buffer, data: bytes, offset: int = 0) -> None:
        self.allocator.write_buffer(buffer, offset, data)

    def read(self, buffer: Buffer, size: Optional[int] = None,
             offset: int = 0) -> bytes:
        return self.allocator.read_buffer(buffer, offset,
                                          buffer.size if size is None else size)

    def write_i32(self, buffer: Buffer, index: int, value: int) -> None:
        self.write(buffer, struct.pack("<i", value), index * 4)

    def read_i32(self, buffer: Buffer, index: int) -> int:
        return struct.unpack("<i", self.read(buffer, 4, index * 4))[0]

    def write_f32(self, buffer: Buffer, index: int, value: float) -> None:
        self.write(buffer, struct.pack("<f", value), index * 4)

    def read_f32(self, buffer: Buffer, index: int) -> float:
        return struct.unpack("<f", self.read(buffer, 4, index * 4))[0]

    # -- kernel launch -------------------------------------------------------------

    def launch(self, kernel: Kernel, args: Dict[str, ArgValue],
               workgroups: int, wg_size: int) -> LaunchContext:
        """Prepare a launch: analysis, IDs, RBT, pointer tagging."""
        self._validate(kernel, args, workgroups, wg_size)
        self._kernel_counter += 1
        kernel_id = self._kernel_counter

        local_buffers = self._layout_locals(kernel, workgroups * wg_size)

        buffer_sizes: Dict[str, int] = {}
        scalar_args: Dict[str, int] = {}
        scalar_maxima: Dict[str, int] = {}
        for param in kernel.params:
            if param.kind == "buffer":
                buffer_sizes[param.name] = args[param.name].size  # type: ignore
            else:
                value = args[param.name]
                if isinstance(value, int):
                    scalar_args[param.name] = value
                if param.max_value is not None:
                    scalar_maxima[param.name] = param.max_value
        for name, buf in local_buffers.items():
            buffer_sizes[name] = buf.size

        bat = None
        if self.shield.enabled:
            cache_key = (id(kernel), workgroups, wg_size,
                         tuple(sorted(scalar_args.items())),
                         tuple(sorted(buffer_sizes.items())))
            bat = self._bat_cache.get(cache_key)
            if bat is None:
                bounds = LaunchBounds(workgroups=workgroups,
                                      workgroup_size=wg_size,
                                      scalar_args=scalar_args,
                                      scalar_maxima=scalar_maxima)
                bat = self.checker.analyze(kernel, bounds, buffer_sizes)
                self._bat_cache[cache_key] = bat

        ctx = LaunchContext(kernel=kernel, workgroups=workgroups,
                            wg_size=wg_size, kernel_id=kernel_id, bat=bat,
                            shield_enabled=self.shield.enabled,
                            local_buffers=local_buffers)

        if not self.shield.enabled:
            for param in kernel.params:
                value = args[param.name]
                ctx.arg_values[param.name] = (
                    value.va if isinstance(value, Buffer)
                    else self._scalar_bits(value))
            for name, buf in local_buffers.items():
                ctx.arg_values[name] = buf.va
            ctx.heap_pointer_tagger = lambda addr, size=0: addr
            return ctx

        self._setup_protection(ctx, kernel, args, bat)
        return ctx

    def _validate(self, kernel: Kernel, args: Dict[str, ArgValue],
                  workgroups: int, wg_size: int) -> None:
        if workgroups <= 0 or wg_size <= 0:
            raise LaunchError("launch geometry must be positive")
        if wg_size % self.config.warp_size:
            raise LaunchError(
                f"workgroup size {wg_size} not a multiple of warp size "
                f"{self.config.warp_size}")
        for param in kernel.params:
            if param.name not in args:
                raise LaunchError(f"missing kernel argument {param.name!r}")
            value = args[param.name]
            if param.kind == "buffer":
                if not isinstance(value, Buffer):
                    raise LaunchError(f"{param.name!r} must be a Buffer")
                if value.freed:
                    raise LaunchError(f"{param.name!r} was freed")
            elif isinstance(value, Buffer):
                raise LaunchError(f"{param.name!r} is scalar, got a Buffer")

    @staticmethod
    def _scalar_bits(value: Union[int, float]) -> Union[int, float]:
        return value

    def _layout_locals(self, kernel: Kernel,
                       total_threads: int) -> Dict[str, Buffer]:
        """Interleaved local-memory layout (§3.1): one region per variable."""
        out: Dict[str, Buffer] = {}
        for var in kernel.local_vars:
            size = var.words_per_thread * 4 * total_threads
            out[f"__local_{var.name}"] = self.allocator.malloc(
                size, name=f"local:{kernel.name}:{var.name}", region="local")
        return out

    # -- GPUShield setup (Figure 10's UpdateBnds flow) -------------------------------

    def _setup_protection(self, ctx: LaunchContext, kernel: Kernel,
                          args: Dict[str, ArgValue],
                          bat: Optional[BoundsAnalysisTable]) -> None:
        key = self._rng.getrandbits(64)
        cipher = IdCipher(key)

        regions: List[tuple] = []   # (param_name, Buffer, read_only)
        for param in kernel.params:
            if param.kind == "buffer":
                buf: Buffer = args[param.name]  # type: ignore
                regions.append((param.name, buf,
                                param.read_only or buf.read_only))
        for name, buf in ctx.local_buffers.items():
            regions.append((name, buf, False))

        # §6.3: when the launch would exceed the ID budget, adjacent
        # buffers share one ID with merged bounds metadata.
        groups = self._group_regions(regions)

        heap_pool_size = (self.shield.config.heap_id_pool
                          if self.shield.config.fine_grained_heap else 0)
        ids = self._rng.sample(range(RBT_ENTRIES),
                               len(groups) + 1 + heap_pool_size)
        heap_id = ids[len(groups)]
        heap_pool = ids[len(groups) + 1:]

        rbt = RegionBoundsTable()
        pointer_ids: Dict[str, int] = {}
        for group, buffer_id in zip(groups, ids):
            base = min(buf.va for _n, buf, _ro in group)
            end = max(buf.va + buf.size for _n, buf, _ro in group)
            read_only = all(ro for _n, _b, ro in group)
            rbt.set(buffer_id, Bounds(base_addr=base, size=end - base,
                                      read_only=read_only))
            for name, _buf, _ro in group:
                pointer_ids[name] = buffer_id
        rbt.set(heap_id, Bounds(base_addr=self.heap.base,
                                size=self.heap.limit))

        # Materialise the RBT image in inaccessible driver pages.
        rbt_buffer = self.allocator.malloc_internal(
            rbt.image_size, name=f"rbt:k{ctx.kernel_id}")
        rbt.write_image(self.memory.write, rbt_buffer.va)
        ctx.rbt_buffer = rbt_buffer

        rbt_base = rbt_buffer.va
        memory_read = self.memory.read

        def rbt_read_entry(buffer_id: int) -> Bounds:
            return RegionBoundsTable.read_entry(memory_read, rbt_base,
                                                buffer_id)

        ctx.security = KernelSecurityContext(
            kernel_id=ctx.kernel_id, cipher=cipher,
            rbt_read_entry=rbt_read_entry)

        # Tag pointers (Figure 7 type selection).
        use_type3 = (self.config.addressing == "method_c"
                     and self.shield.config.bcu.type3_enabled)
        for (name, buf, _read_only) in regions:
            buffer_id = pointer_ids[name]
            if bat is not None and not bat.needs_runtime(name):
                ctx.arg_values[name] = make_unprotected_pointer(buf.va)
                ctx.pointer_types[name] = PointerType.UNPROTECTED
            elif use_type3 and buf.padded_size >= buf.size:
                log2_size = (buf.padded_size - 1).bit_length()
                ctx.arg_values[name] = make_offset_pointer(buf.va, log2_size)
                ctx.pointer_types[name] = PointerType.OFFSET_OPT
                self._write_canary(buf)
                ctx.type3_buffers.append(buf)
            else:
                ctx.arg_values[name] = make_base_pointer(
                    buf.va, cipher.encrypt(buffer_id))
                ctx.pointer_types[name] = PointerType.BASE

        for param in kernel.params:
            if param.kind == "scalar":
                ctx.arg_values[param.name] = self._scalar_bits(
                    args[param.name])

        heap_payload = cipher.encrypt(heap_id)
        if heap_pool:
            # Future-work extension (§5.7): individual device-malloc
            # allocations get their own bounds from a reserved ID pool;
            # when the pool runs dry, fall back to the whole-heap region.
            pool = list(heap_pool)
            rbt_entry_writer = self.memory.write
            rbt_base_addr = rbt_buffer.va

            def tag_heap(addr: int, size: int = 0) -> int:
                if pool and size > 0:
                    hid = pool.pop()
                    bounds = Bounds(base_addr=addr, size=size)
                    rbt_entry_writer(
                        rbt_base_addr + rbt.entry_offset(hid),
                        bounds.pack())
                    return make_base_pointer(addr, cipher.encrypt(hid))
                return make_base_pointer(addr, heap_payload)

            ctx.heap_pointer_tagger = tag_heap
        else:
            ctx.heap_pointer_tagger = (
                lambda addr, size=0: make_base_pointer(addr, heap_payload))

    def _group_regions(self, regions: List[tuple]) -> List[List[tuple]]:
        """Group regions onto shared IDs when the budget is tight (§6.3)."""
        budget = max(2, min(self.shield.config.id_budget, RBT_ENTRIES))
        reserve = 1 + (self.shield.config.heap_id_pool
                       if self.shield.config.fine_grained_heap else 0)
        groups: List[List[tuple]] = [[r] for r in regions]
        if not groups:
            return groups
        groups.sort(key=lambda g: g[0][1].va)
        while len(groups) + reserve > budget and len(groups) > 1:
            # Merge the VA-adjacent pair whose combined span is smallest,
            # keeping the metadata as tight as the budget allows.
            def span(i):
                left, right = groups[i], groups[i + 1]
                base = min(b.va for _n, b, _ro in left)
                end = max(b.va + b.size for _n, b, _ro in right)
                return end - base

            best = min(range(len(groups) - 1), key=span)
            groups[best:best + 2] = [groups[best] + groups[best + 1]]
        return groups

    def _write_canary(self, buf: Buffer) -> None:
        """Fill Type-3 padding with canary bytes (§5.3.3)."""
        pad = buf.padded_size - buf.size
        if pad > 0:
            self.memory.write(buf.va + buf.size, bytes([_CANARY_BYTE]) * pad)

    # -- kernel completion ---------------------------------------------------------

    def finish(self, ctx: LaunchContext) -> List[ViolationRecord]:
        """End-of-kernel processing: error report + canary verification."""
        if ctx.finished:
            raise LaunchError("launch already finished")
        ctx.finished = True
        records: List[ViolationRecord] = []
        if ctx.shield_enabled:
            records.extend(self.shield.drain_violations())
            for buf in ctx.type3_buffers:
                records.extend(self._check_canary(ctx, buf))
        for buf in ctx.local_buffers.values():
            self.allocator.free(buf)
        if ctx.rbt_buffer is not None:
            self.allocator.free(ctx.rbt_buffer)
        return records

    def _check_canary(self, ctx: LaunchContext,
                      buf: Buffer) -> List[ViolationRecord]:
        pad = buf.padded_size - buf.size
        if pad <= 0:
            return []
        blob = self.memory.read(buf.va + buf.size, pad)
        dirty = [i for i, b in enumerate(blob) if b != _CANARY_BYTE]
        if not dirty:
            return []
        return [ViolationRecord(
            kernel_id=ctx.kernel_id, buffer_id=-1,
            lo=buf.va + buf.size + dirty[0],
            hi=buf.va + buf.size + dirty[-1],
            is_store=True, reason="type3-canary")]
