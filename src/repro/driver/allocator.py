"""Device memory allocator.

Reproduces the allocation behaviour the paper's Figure 4 experiment
depends on:

* buffers are aligned to 512 bytes (the "default 512B address alignment"
  that *suppresses* small overflow writes into padding);
* device pages (2MB on the Nvidia configuration) are mapped on demand, so
  consecutive small buffers share a page — an overflow write inside the
  page silently corrupts the neighbour, while crossing into an unmapped
  page faults ("kernel aborted with an illegal memory access error");
* with ``pow2_pad=True`` (Intel / Type-3 mode, §5.3.3) every buffer is
  padded to the next power of two, enabling offset-optimised pointers at
  the cost of fragmentation.

Separate regions exist for constant data, global buffers, the device
heap, local (stack) memory and driver-internal structures (the RBT).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AllocationError
from repro.gpu.memory import AddressSpace, PageFlags, PhysicalMemory
from repro.utils.bitops import next_power_of_two, round_up


@dataclass(frozen=True)
class MemoryRegions:
    """Base addresses of the device virtual-memory regions."""

    constant: int = 0x1000_0000_0000
    texture: int = 0x1800_0000_0000
    global_: int = 0x2000_0000_0000
    heap: int = 0x6000_0000_0000
    local: int = 0x7000_0000_0000
    internal: int = 0x0F00_0000_0000   # RBT and other driver structures

    def region_of(self, va: int) -> str:
        if va >= self.local:
            return "local"
        if va >= self.heap:
            return "heap"
        if va >= self.global_:
            return "global"
        if va >= self.texture:
            return "texture"
        if va >= self.constant:
            return "constant"
        return "internal"


_buffer_ids = itertools.count(1)


@dataclass
class Buffer:
    """One device allocation as the host sees it."""

    va: int
    size: int              # requested size
    padded_size: int       # size actually reserved (alignment / pow2 pad)
    region: str
    name: str = ""
    read_only: bool = False
    svm: bool = False
    freed: bool = False
    handle: int = field(default_factory=lambda: next(_buffer_ids))

    @property
    def end(self) -> int:
        return self.va + self.size


class DeviceAllocator:
    """Bump allocator over the region layout with on-demand page mapping."""

    def __init__(self, memory: PhysicalMemory, space: AddressSpace,
                 regions: Optional[MemoryRegions] = None,
                 alignment: int = 512, pow2_pad: bool = False):
        self.memory = memory
        self.space = space
        self.regions = regions or MemoryRegions()
        self.alignment = alignment
        self.pow2_pad = pow2_pad
        self._cursors: Dict[str, int] = {
            "constant": self.regions.constant,
            "texture": self.regions.texture,
            "global": self.regions.global_,
            "local": self.regions.local,
            "internal": self.regions.internal,
        }
        self.allocations: List[Buffer] = []

    def malloc(self, size: int, *, name: str = "", read_only: bool = False,
               svm: bool = False, region: str = "global") -> Buffer:
        """Allocate ``size`` bytes; maps the covering pages on demand."""
        if size <= 0:
            raise AllocationError(f"bad allocation size {size}")
        if region not in self._cursors:
            raise AllocationError(f"unknown region {region!r}")
        padded = round_up(size, self.alignment)
        if self.pow2_pad:
            padded = max(next_power_of_two(size), self.alignment)
        cursor = round_up(self._cursors[region], self.alignment)
        if self.pow2_pad:
            # Power-of-two padded buffers are naturally aligned so the
            # base+offset check covers exactly the padded region.
            cursor = round_up(cursor, padded)
        va = cursor
        self._cursors[region] = va + padded
        flags = PageFlags(writable=not read_only, accessible=True, svm=svm)
        self.space.map_range(va, padded, flags)
        buffer = Buffer(va=va, size=size, padded_size=padded, region=region,
                        name=name, read_only=read_only, svm=svm)
        self.allocations.append(buffer)
        return buffer

    def malloc_internal(self, size: int, name: str = "") -> Buffer:
        """Driver-internal allocation on pages normal accesses cannot touch
        (the RBT pages of §5.4)."""
        padded = round_up(size, self.alignment)
        cursor = round_up(self._cursors["internal"], self.alignment)
        va = cursor
        self._cursors["internal"] = va + padded
        self.space.map_range(va, padded,
                             PageFlags(writable=False, accessible=False))
        buffer = Buffer(va=va, size=size, padded_size=padded,
                        region="internal", name=name)
        self.allocations.append(buffer)
        return buffer

    def free(self, buffer: Buffer) -> None:
        """Release an allocation.

        Pages are left mapped if other live buffers share them — exactly
        the coarse page-granularity behaviour that native protection has.
        """
        if buffer.freed:
            raise AllocationError(f"double free of {buffer.name or buffer.va:#x}")
        buffer.freed = True
        page = self.space.page_size
        first = buffer.va // page
        last = (buffer.va + buffer.padded_size - 1) // page
        for pg in range(first, last + 1):
            lo, hi = pg * page, (pg + 1) * page
            shared = any(
                not b.freed and b.va < hi and lo < b.va + b.padded_size
                for b in self.allocations if b is not buffer)
            if not shared and hi <= self._cursors.get(buffer.region, 0):
                self.space.unmap_range(lo, page - 1)

    def live_buffers(self) -> List[Buffer]:
        return [b for b in self.allocations if not b.freed]

    # -- device lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Forget every allocation: cursors back to the region bases.

        Page unmapping is the address space's job (the device resets it
        alongside); ``allocations`` is cleared in place so any holder of
        the list sees the wipe.  Previously returned :class:`Buffer`
        objects become dangling — exactly like a freed CUDA context.
        """
        self._cursors.update({
            "constant": self.regions.constant,
            "texture": self.regions.texture,
            "global": self.regions.global_,
            "local": self.regions.local,
            "internal": self.regions.internal,
        })
        self.allocations.clear()

    def cursors_snapshot(self) -> Dict[str, int]:
        return dict(self._cursors)

    def restore_cursors(self, cursors: Dict[str, int]) -> None:
        self._cursors.update(cursors)

    # -- host-side data movement (cudaMemcpy equivalents) ----------------------

    def write_buffer(self, buffer: Buffer, offset: int, data: bytes) -> None:
        """Host -> device copy (bounds-checked on the host side)."""
        if offset < 0 or offset + len(data) > buffer.padded_size:
            raise AllocationError("host copy escapes allocation")
        self.memory.write(buffer.va + offset, data)

    def read_buffer(self, buffer: Buffer, offset: int, size: int) -> bytes:
        """Device -> host copy."""
        if offset < 0 or offset + size > buffer.padded_size:
            raise AllocationError("host copy escapes allocation")
        return self.memory.read(buffer.va + offset, size)
