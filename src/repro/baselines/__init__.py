"""Baseline protection mechanisms the paper compares against (Figure 19).

* :mod:`repro.baselines.memcheck` — CUDA-MEMCHECK-style binary
  instrumentation: every global/local memory operation gains a shadow
  metadata load plus a software check routine, and the debug runtime
  degrades cache behaviour;
* :mod:`repro.baselines.canary` — clArmor-style canary allocation with a
  host-side scan after every kernel launch;
* :mod:`repro.baselines.gmod` — GMOD-style guard threads with mandatory
  constructor/destructor work on every kernel launch;
* :mod:`repro.baselines.swbounds` — in-kernel ``if (idx < n)`` software
  bounds checks (§6.4 / Figure 13).
"""

from repro.baselines.memcheck import instrument_workload, memcheck_config
from repro.baselines.canary import CanaryRunner
from repro.baselines.gmod import GmodRunner
from repro.baselines.swbounds import kmeans_swap_sw_checks

__all__ = [
    "instrument_workload",
    "memcheck_config",
    "CanaryRunner",
    "GmodRunner",
    "kmeans_swap_sw_checks",
]
