"""clArmor-style canary baseline (paper §4.1, §8.5).

clArmor intercepts OpenCL allocation calls to place canary words around
every buffer and, after *each* kernel completes, synchronises with the
device and scans the canary regions from the host.  The paper measures a
3.1x average slowdown on Rodinia.

We reproduce the mechanism:

* at setup, canary bytes are physically written after every buffer
  (the allocator's 512B alignment slack is the canary region);
* after every launch the runner really reads those regions back and
  checks them — corruption is detected, canary-jumping attacks are not
  (the coverage hole GPUShield closes);
* cost accounting charges the device-synchronisation stall plus the scan
  at host-copy speed, both expressed in GPU cycles.

Calibration constants (documented, single source of truth here):
a kernel-boundary sync flush costs ~``SYNC_CYCLES`` and the host scans
canaries at ~``SCAN_BYTES_PER_CYCLE``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.harness import LaunchInterposer, WorkloadRunner
from repro.analysis.results import RunRecord
from repro.core.violations import ViolationRecord
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import LaunchResult
from repro.workloads.templates import Workload

CANARY_BYTE = 0x5C
CANARY_BYTES_PER_BUFFER = 128
#: Device-sync + launch-interception cost per kernel, in GPU cycles.
SYNC_CYCLES = 4000
#: Host-side canary scan throughput (bytes per GPU cycle).
SCAN_BYTES_PER_CYCLE = 0.25


class CanaryRunner(LaunchInterposer):
    """Runs a workload under clArmor-style canary protection.

    A :class:`LaunchInterposer`: all interposition happens at kernel
    boundaries (the tool never sees individual accesses — the coverage
    hole GPUShield's per-access checker closes)."""

    def __init__(self, workload: Workload,
                 config: Optional[GPUConfig] = None, seed: int = 11):
        # Canary tools run WITHOUT GPUShield hardware; allocation is
        # intercepted to append the canary region to every buffer.
        self.runner = WorkloadRunner(workload, config=config, shield=None,
                                     config_name="clarmor", seed=seed,
                                     alloc_pad=CANARY_BYTES_PER_BUFFER)
        self.detections: List[ViolationRecord] = []
        self._plant_canaries()

    def _canary_region(self, name: str):
        return (self.runner.data_end(name), CANARY_BYTES_PER_BUFFER)

    def _plant_canaries(self) -> None:
        memory = self.runner.session.driver.memory
        for name in self.runner.buffers:
            addr, take = self._canary_region(name)
            memory.write(addr, bytes([CANARY_BYTE]) * take)

    def _scan(self) -> int:
        """Really read and verify every canary; returns bytes scanned."""
        memory = self.runner.session.driver.memory
        scanned = 0
        for name, buf in self.runner.buffers.items():
            addr, take = self._canary_region(name)
            scanned += take
            blob = memory.read(addr, take)
            dirty = [i for i, b in enumerate(blob) if b != CANARY_BYTE]
            if dirty:
                self.detections.append(ViolationRecord(
                    kernel_id=0, buffer_id=buf.handle,
                    lo=addr + dirty[0], hi=addr + dirty[-1],
                    is_store=True, reason="canary"))
                # Re-arm so later scans detect fresh corruption.
                memory.write(addr, bytes([CANARY_BYTE]) * take)
        return scanned

    def post_launch(self, runner: WorkloadRunner,
                    result: Optional[LaunchResult]) -> int:
        """Device sync + host-side canary scan after every kernel."""
        scanned = self._scan()
        return SYNC_CYCLES + int(scanned / SCAN_BYTES_PER_CYCLE)

    def run(self) -> RunRecord:
        record = self.runner.run(interposer=self)
        record.config = "clarmor"
        record.extra["canary_detections"] = float(len(self.detections))
        return record
