"""In-kernel software bounds checks (paper §6.4, Figure 13).

Programmers commonly guard GPU accesses with ``if (tid < n)`` clauses.
The paper measures up to 76% overhead from (1) the extra instructions
executed by *every* workitem and (2) control-flow divergence when some
lanes fail the check.  GPUShield's hardware checks could subsume these
guards (left as future work in the paper; the ablation bench
``bench_ablation_swcheck`` quantifies the same comparison here).

This module builds kmeans-swap variants:

* ``checked`` — Figure 13's kernel with the software guard on every
  access (per-access ``if`` + index clamp re-evaluation);
* ``unchecked`` — the raw kernel with no guard, relying on GPUShield;
* ``divergent`` — the guard plus an oversubscribed launch so that part
  of every warp fails it (the divergence cost).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.checker import ALLOW, AccessContext, CheckOutcome
from repro.isa.builder import KernelBuilder
from repro.isa.program import Kernel
from repro.workloads.templates import BufferSpec, KernelRun, Workload, _buf, _scalar

#: Instructions one in-kernel guard adds per access (setp + branch).
GUARD_COST_CYCLES = 2


class SoftwareGuardChecker:
    """The in-kernel ``if (tid < n)`` guard behind the unified
    :class:`~repro.core.checker.AccessChecker` protocol.

    Each global access is compared against the known buffer regions —
    the same (min, max) range the BCU judges — and charged the guard's
    instruction cost as an issue bubble.  Unlike the real in-kernel
    variant this form cannot diverge (the comparison is per warp, not
    per lane), which is exactly the saving the paper attributes to
    hardware subsuming software guards (§6.4).
    """

    def __init__(self, regions: Dict[str, Tuple[int, int]],
                 guard_cost: int = GUARD_COST_CYCLES):
        self.regions = dict(regions)
        self.guard_cost = guard_cost
        self.checks = 0
        self.failures: List[Tuple[int, int]] = []

    def check(self, ctx: AccessContext) -> CheckOutcome:
        if ctx.space != "global":
            return ALLOW
        self.checks += 1
        for va, size in self.regions.values():
            if ctx.lo >= va and ctx.hi < va + size:
                return CheckOutcome(allowed=True,
                                    stall_cycles=self.guard_cost)
        # The guard clause fails: the lanes skip the access (predicated
        # off), modelled as a zero-load/drop-store like the BCU's policy.
        self.failures.append((ctx.lo, ctx.hi))
        return CheckOutcome(allowed=False, stall_cycles=self.guard_cost)


def _kmeans_kernel(name: str, *, guard_per_access: bool,
                   guard_entry: bool) -> Kernel:
    b = KernelBuilder(name)
    feat = b.arg_ptr("feat", read_only=True)
    feat_swap = b.arg_ptr("feat_swap")
    npoints = b.arg_scalar("npoints")
    nfeatures = b.arg_scalar("nfeatures")
    tid = b.gtid()

    def body():
        with b.loop(nfeatures) as i:
            src_idx = b.mad(tid, nfeatures, i)
            dst_idx = b.mad(i, npoints, tid)
            if guard_per_access:
                # Software checking of both accesses: bounds comparison
                # per access, as instrumenting compilers emit.
                total = b.mul(npoints, nfeatures)
                p_src = b.setp("lt", src_idx, total)
                with b.if_(p_src):
                    value = b.ld_idx(feat, src_idx, dtype="f32")
                    p_dst = b.setp("lt", dst_idx, total)
                    with b.if_(p_dst):
                        b.st_idx(feat_swap, dst_idx, value, dtype="f32")
            else:
                value = b.ld_idx(feat, src_idx, dtype="f32")
                b.st_idx(feat_swap, dst_idx, value, dtype="f32")

    if guard_entry:
        pred = b.setp("lt", tid, npoints)
        with b.if_(pred):
            body()
    else:
        body()
    return b.build()


def kmeans_swap_sw_checks(variant: str, *, npoints: int = 2048,
                          nfeatures: int = 4, wg_size: int = 64,
                          oversubscribe: float = 1.0) -> Workload:
    """Build one §6.4 comparison variant.

    ``oversubscribe`` > 1 launches more threads than ``npoints`` so the
    entry guard diverges inside warps (the paper's worst case).
    """
    if variant == "unchecked":
        kernel = _kmeans_kernel("kmeans_raw", guard_per_access=False,
                                guard_entry=False)
    elif variant == "guarded":
        kernel = _kmeans_kernel("kmeans_guarded", guard_per_access=False,
                                guard_entry=True)
    elif variant == "checked":
        kernel = _kmeans_kernel("kmeans_swchecked", guard_per_access=True,
                                guard_entry=True)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    threads = int(npoints * oversubscribe)
    workgroups = -(-threads // wg_size)
    nbytes = npoints * nfeatures * 4
    return Workload(
        name=f"kmeans-swap:{variant}",
        buffers=[BufferSpec("feat", nbytes, "randf", read_only=True),
                 BufferSpec("feat_swap", nbytes, "zero")],
        runs=[KernelRun(kernel,
                        {"feat": _buf("feat"),
                         "feat_swap": _buf("feat_swap"),
                         "npoints": _scalar(npoints),
                         "nfeatures": _scalar(nfeatures)},
                        workgroups=workgroups, wg_size=wg_size)])
