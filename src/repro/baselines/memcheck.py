"""CUDA-MEMCHECK-style instrumentation baseline (paper §8.5).

CUDA-MEMCHECK JIT-instruments every memory operation: the tool inserts a
call-out that loads allocation metadata from a shadow table and runs a
software check, and the debug runtime largely defeats the cache
hierarchy.  The paper measures a 72.3x geometric-mean slowdown (224x on
streamcluster, whose instruction mix is 31% loads/stores).

We reproduce the mechanism, not a magic constant:

* :func:`instrument_kernel` rewrites the instruction stream, inserting
  before every global/local/heap memory operation an address
  computation, a shadow-table load and a check loop (the JIT call-out);
* :func:`memcheck_config` degrades the cache configuration to one-set
  L1/L2 (the debug runtime's bypass behaviour);
* :class:`MemcheckChecker` is the tool's *detection* logic behind the
  unified :class:`~repro.core.checker.AccessChecker` protocol: the same
  per-access (min, max) ranges the BCU judges are validated against the
  shadow allocation table.  Its timing cost is zero — the price is
  already paid by the instrumented instructions flowing through the
  same memory pipeline — so :class:`MemcheckRunner` composes all three
  pieces without any bespoke executor plumbing.

The slowdown then *emerges* from the instrumented instruction count and
the wrecked cache behaviour, and is naturally worst for memory-intensive
many-launch benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.checker import ALLOW, AccessContext, CheckOutcome
from repro.core.violations import ViolationRecord
from repro.gpu.config import GPUConfig
from repro.isa.instructions import Imm, Instr, Reg
from repro.isa.program import Kernel, KernelParam
from repro.workloads.templates import BufferSpec, KernelRun, Workload

SHADOW_PARAM = "__shadow"
SHADOW_ENTRIES = 4096
#: Iterations of the software check routine per memory operation — the
#: JIT call-out that walks the allocation table.
CHECK_LOOP_ITERS = 64


def instrument_kernel(kernel: Kernel) -> Kernel:
    """Insert the MEMCHECK call-out before every off-chip memory op."""
    base_reg = kernel.num_regs
    t_addr = Reg(base_reg)
    t_idx = Reg(base_reg + 1)
    t_meta = Reg(base_reg + 2)
    t_acc = Reg(base_reg + 3)
    t_iv = Reg(base_reg + 4)
    shadow_ptr = Reg(base_reg + 5)
    num_regs = base_reg + 6

    out: List[Instr] = []
    for instr in kernel.instructions:
        if instr.op in ("ld", "st") and instr.space != "shared":
            base, offset = instr.srcs[0], instr.srcs[1]
            pred = instr.pred
            out.extend([
                # addr = base + offset; idx = (addr >> 12) & (entries-1)
                Instr("add", dst=t_addr, srcs=(base, offset), pred=pred),
                Instr("shr", dst=t_idx, srcs=(t_addr, Imm(12)), pred=pred),
                Instr("and", dst=t_idx,
                      srcs=(t_idx, Imm(SHADOW_ENTRIES - 1)), pred=pred),
                Instr("shl", dst=t_idx, srcs=(t_idx, Imm(2)), pred=pred),
                # shadow metadata load — the extra memory traffic
                Instr("ld", dst=t_meta, srcs=(shadow_ptr, t_idx),
                      pred=pred, space="global", dtype="i32"),
                # the software check routine (allocation-table walk)
                Instr("mov", dst=t_acc, srcs=(t_meta,), pred=pred),
                Instr("loop", dst=t_iv, srcs=(Imm(CHECK_LOOP_ITERS),)),
                Instr("add", dst=t_acc, srcs=(t_acc, t_iv), pred=pred),
                Instr("and", dst=t_acc, srcs=(t_acc, Imm(0xFFFF)),
                      pred=pred),
                Instr("endloop", dst=t_iv),
            ])
        out.append(instr)

    params = list(kernel.params)
    params.append(KernelParam(name=SHADOW_PARAM, kind="buffer",
                              read_only=True))
    arg_regs = dict(kernel.arg_regs)
    arg_regs[SHADOW_PARAM] = shadow_ptr.index
    return Kernel(
        name=f"{kernel.name}+memcheck",
        instructions=out,
        num_regs=num_regs,
        params=params,
        local_vars=list(kernel.local_vars),
        shared_bytes=kernel.shared_bytes,
        accesses=list(kernel.accesses),
        arg_regs=arg_regs,
    )


def instrument_workload(workload: Workload) -> Workload:
    """Instrument every kernel and add the shadow table buffer."""
    shadow = BufferSpec(SHADOW_PARAM, SHADOW_ENTRIES * 4, "iota",
                        read_only=True)
    kernel_cache: Dict[int, Kernel] = {}
    runs: List[KernelRun] = []
    for run in workload.runs:
        instrumented = kernel_cache.get(id(run.kernel))
        if instrumented is None:
            instrumented = instrument_kernel(run.kernel)
            kernel_cache[id(run.kernel)] = instrumented
        args = dict(run.args)
        args[SHADOW_PARAM] = ("buf", SHADOW_PARAM)
        runs.append(KernelRun(kernel=instrumented, args=args,
                              workgroups=run.workgroups,
                              wg_size=run.wg_size))
    return Workload(
        name=workload.name,
        buffers=list(workload.buffers) + [shadow],
        runs=runs,
        repeats=workload.repeats,
        category=workload.category,
        suite=workload.suite,
        notes="cuda-memcheck instrumentation",
    )


def memcheck_config(config: GPUConfig) -> GPUConfig:
    """The debug runtime's cache behaviour: effectively one-set caches."""
    return config.scaled(
        l1d_bytes=config.line_size * config.l1d_assoc,
        l2_bytes=config.line_size * config.l2_assoc,
        max_warps_per_core=1,   # debug-mode warp serialisation
    )


class MemcheckChecker:
    """The shadow-table validation behind the ``AccessChecker`` seam.

    ``regions`` maps allocation names to ``(va, size)``.  Every global
    warp access is range-checked against them; an access outside every
    allocation is *detected* (recorded) but never blocked — MEMCHECK
    reports, it does not prevent.  The outcome carries no stall and no
    latency: the tool's cost is the instrumented instruction stream
    itself, which rides the same pipeline as the checked access.
    """

    def __init__(self, regions: Dict[str, Tuple[int, int]]):
        self.regions = dict(regions)
        self.detections: List[ViolationRecord] = []
        self.checked = 0

    def check(self, ctx: AccessContext) -> CheckOutcome:
        if ctx.space != "global":
            return ALLOW
        self.checked += 1
        for va, size in self.regions.values():
            if ctx.lo >= va and ctx.hi < va + size:
                return ALLOW
        self.detections.append(ViolationRecord(
            kernel_id=0, buffer_id=-1, lo=ctx.lo, hi=ctx.hi,
            is_store=ctx.is_store, reason="memcheck-shadow",
            cycle=ctx.cycle))
        return ALLOW


class MemcheckRunner:
    """Runs a workload the way CUDA-MEMCHECK does: instrumented kernels,
    a wrecked cache configuration, and per-access shadow validation
    attached to every core's memory pipeline."""

    def __init__(self, workload: Workload,
                 config: Optional[GPUConfig] = None, seed: int = 11):
        from repro.analysis.harness import WorkloadRunner
        from repro.gpu.config import nvidia_config
        config = config or nvidia_config()
        self.runner = WorkloadRunner(instrument_workload(workload),
                                     config=memcheck_config(config),
                                     shield=None, config_name="memcheck",
                                     seed=seed)
        self.checker = MemcheckChecker({
            name: (buf.va, buf.size)
            for name, buf in self.runner.buffers.items()})
        for core in self.runner.session.gpu.cores:
            core.pipeline.checker = self.checker

    @property
    def detections(self) -> List[ViolationRecord]:
        return self.checker.detections

    def run(self):
        record = self.runner.run()
        record.config = "memcheck"
        record.extra["memcheck_checked"] = float(self.checker.checked)
        record.extra["memcheck_detections"] = float(len(self.detections))
        return record
