"""GMOD-style guard-thread baseline (paper §4.1, §8.5).

GMOD runs concurrent guard threads that poll buffer canaries while
kernels execute, and its software structure forces applications to call
a constructor/destructor pair around *every* kernel launch.  The paper
measures a 1.5x average slowdown — but 109x on streamcluster, whose
1000 launches pay the ctor/dtor cost each time.

Mechanism reproduced here:

* guard canaries are planted like clArmor's and *polled periodically*:
  we charge a small interference tax proportional to kernel cycles (the
  guard kernel steals SM slots) and scan for corruption after each
  polling quantum;
* every launch pays the constructor/destructor overhead
  (``CTOR_DTOR_CYCLES``), which dominates for many-launch workloads —
  the streamcluster blow-up is emergent, not special-cased.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.harness import LaunchInterposer, WorkloadRunner
from repro.analysis.results import RunRecord
from repro.core.violations import ViolationRecord
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import LaunchResult
from repro.workloads.templates import Workload

GUARD_CANARY_BYTE = 0x6D
GUARD_BYTES_PER_BUFFER = 64
#: Constructor/destructor work around every kernel launch (GPU cycles).
#: Host-side guard setup overlaps with the running kernel, so only the
#: portion exceeding the kernel's own runtime is exposed (plus a fixed
#: launch-interception cost) — the model that makes frequent tiny
#: launches (streamcluster) explode while long kernels hide the cost.
CTOR_DTOR_CYCLES = 8000
LAUNCH_FIXED_CYCLES = 500
#: Fraction of kernel cycles stolen by the concurrent guard kernel.
GUARD_INTERFERENCE = 0.03


class GmodRunner(LaunchInterposer):
    """Runs a workload under GMOD-style guard-thread protection.

    A :class:`LaunchInterposer`: the guard kernel and the per-launch
    constructor/destructor pair both live at launch granularity."""

    def __init__(self, workload: Workload,
                 config: Optional[GPUConfig] = None, seed: int = 11):
        self.runner = WorkloadRunner(workload, config=config, shield=None,
                                     config_name="gmod", seed=seed,
                                     alloc_pad=GUARD_BYTES_PER_BUFFER)
        self.detections: List[ViolationRecord] = []
        self._plant()

    def _region(self, name: str):
        return (self.runner.data_end(name), GUARD_BYTES_PER_BUFFER)

    def _plant(self) -> None:
        memory = self.runner.session.driver.memory
        for name in self.runner.buffers:
            addr, take = self._region(name)
            memory.write(addr, bytes([GUARD_CANARY_BYTE]) * take)

    def _poll(self) -> None:
        memory = self.runner.session.driver.memory
        for name, buf in self.runner.buffers.items():
            addr, take = self._region(name)
            blob = memory.read(addr, take)
            dirty = [i for i, b in enumerate(blob) if b != GUARD_CANARY_BYTE]
            if dirty:
                self.detections.append(ViolationRecord(
                    kernel_id=0, buffer_id=buf.handle,
                    lo=addr + dirty[0], hi=addr + dirty[-1],
                    is_store=True, reason="guard-canary"))
                memory.write(addr, bytes([GUARD_CANARY_BYTE]) * take)

    def post_launch(self, runner: WorkloadRunner,
                    result: Optional[LaunchResult]) -> int:
        """Poll the guards; charge ctor/dtor exposure + interference."""
        self._poll()
        interference = int(result.cycles * GUARD_INTERFERENCE)
        exposed = max(0, CTOR_DTOR_CYCLES - result.cycles)
        return LAUNCH_FIXED_CYCLES + exposed + interference

    def run(self) -> RunRecord:
        record = self.runner.run(interposer=self)
        record.config = "gmod"
        record.extra["guard_detections"] = float(len(self.detections))
        return record
