"""Bounds-violation logging and reporting policies (paper §5.5.2).

When the BCU detects an out-of-bounds access it can:

* ``PRECISE`` — raise immediately (GPUs with precise exceptions);
* ``LOG`` — record the error, return zero for loads, and silently drop
  stores; errors are reported when the kernel finishes;
* ``SIGNAL_HOST`` — like ``LOG`` but also appends the record to a shared
  SVM mailbox so the host can observe violations mid-kernel.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

from repro.errors import BoundsViolation


class ReportPolicy(Enum):
    """How a detected violation is surfaced."""

    PRECISE = "precise"
    LOG = "log"
    SIGNAL_HOST = "signal_host"


@dataclass(frozen=True)
class ViolationRecord:
    """One detected out-of-bounds access."""

    kernel_id: int
    buffer_id: int
    lo: int
    hi: int
    is_store: bool
    reason: str
    cycle: int = 0

    _WIRE = struct.Struct("<IIQQBxxxQ")

    def pack(self) -> bytes:
        """Serialise for the SVM mailbox (host-observable format)."""
        return self._WIRE.pack(
            self.kernel_id, self.buffer_id, self.lo, self.hi,
            1 if self.is_store else 0, self.cycle,
        )

    @classmethod
    def unpack(cls, blob: bytes, reason: str = "mailbox") -> "ViolationRecord":
        kernel_id, buffer_id, lo, hi, is_store, cycle = cls._WIRE.unpack(blob)
        return cls(kernel_id=kernel_id, buffer_id=buffer_id, lo=lo, hi=hi,
                   is_store=bool(is_store), reason=reason, cycle=cycle)

    @classmethod
    def wire_size(cls) -> int:
        return cls._WIRE.size


@dataclass
class ViolationLog:
    """Error log kept by the BCU, drained at kernel completion."""

    policy: ReportPolicy = ReportPolicy.LOG
    records: List[ViolationRecord] = field(default_factory=list)
    mailbox_write: Optional[Callable[[bytes], None]] = None

    def report(self, record: ViolationRecord) -> None:
        """Handle one violation according to the active policy."""
        if self.policy is ReportPolicy.PRECISE:
            raise BoundsViolation(
                kernel_id=record.kernel_id,
                buffer_id=record.buffer_id,
                lo=record.lo,
                hi=record.hi,
                is_store=record.is_store,
                reason=record.reason,
            )
        self.records.append(record)
        if self.policy is ReportPolicy.SIGNAL_HOST and self.mailbox_write:
            self.mailbox_write(record.pack())

    def drain(self) -> List[ViolationRecord]:
        """Return and clear the accumulated records (end-of-kernel report)."""
        out, self.records = self.records, []
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)
