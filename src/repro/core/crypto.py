"""Per-kernel encryption of 14-bit buffer IDs (paper §5.2.4, §6.1).

The paper requires a bijection on the 14-bit ID space keyed by a per-kernel
secret so that (a) the plain ID never appears in a pointer, and (b) the same
kernel relaunched uses a fresh mapping.  Real hardware would use a small
block cipher; we use a 4-round balanced Feistel network over two 7-bit
halves, which is a bijection for any round function and cheap to evaluate
in the simulator's hot path.

Security fidelity note: the construction only needs to be a keyed PRP for
the *evaluation* to be faithful — forged pointers decrypt to an effectively
random ID, whose RBT entry is invalid with overwhelming probability, which
is exactly the failure mode the paper relies on.
"""

from __future__ import annotations

from repro.utils.bitops import mask

ID_BITS = 14
ID_SPACE = 1 << ID_BITS
_HALF_BITS = ID_BITS // 2
_HALF_MASK = mask(_HALF_BITS)
_ROUNDS = 4

# Multiplier/increment from a split-mix style mixer; any odd constants work.
_MIX_MUL = 0x9E3779B97F4A7C15
_MIX_XOR = 0xBF58476D1CE4E5B9


def _round_function(half: int, round_key: int) -> int:
    """A 7-bit -> 7-bit mixing function keyed per round."""
    x = (half ^ round_key) & 0xFFFF
    x = (x * 0x45D9F3B + round_key) & 0xFFFFFFFF
    x ^= x >> 7
    return x & _HALF_MASK


class IdCipher:
    """A keyed bijection over the 14-bit buffer-ID space.

    >>> c = IdCipher(key=0xDEADBEEF)
    >>> c.decrypt(c.encrypt(1234))
    1234
    """

    def __init__(self, key: int):
        self.key = key & ((1 << 64) - 1)
        self._round_keys = self._derive_round_keys(self.key)

    @staticmethod
    def _derive_round_keys(key: int):
        keys = []
        state = key
        for _ in range(_ROUNDS):
            state = (state * _MIX_MUL + 1) & ((1 << 64) - 1)
            state ^= (state >> 31) ^ _MIX_XOR
            state &= (1 << 64) - 1
            keys.append(state & 0xFFFF)
        return tuple(keys)

    def encrypt(self, plain_id: int) -> int:
        """Map a plain buffer ID to its encrypted pointer payload."""
        if not 0 <= plain_id < ID_SPACE:
            raise ValueError(f"buffer id {plain_id} out of 14-bit range")
        left = (plain_id >> _HALF_BITS) & _HALF_MASK
        right = plain_id & _HALF_MASK
        for rk in self._round_keys:
            left, right = right, left ^ _round_function(right, rk)
        return (left << _HALF_BITS) | right

    def decrypt(self, cipher_id: int) -> int:
        """Invert :meth:`encrypt`."""
        if not 0 <= cipher_id < ID_SPACE:
            raise ValueError(f"encrypted id {cipher_id} out of 14-bit range")
        left = (cipher_id >> _HALF_BITS) & _HALF_MASK
        right = cipher_id & _HALF_MASK
        for rk in reversed(self._round_keys):
            left, right = right ^ _round_function(left, rk), left
        return (left << _HALF_BITS) | right
