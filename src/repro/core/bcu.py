"""The Bounds-Checking Unit (paper §5.5, Figure 12).

The BCU sits next to the LSU.  For every warp-level memory instruction it
receives (from the address-gathering stage) the *min/max* byte range of the
coalesced transactions plus the tag bits of the base pointer, and decides:

* **Type 1** (C=0): statically verified — no check, no cost.
* **Type 2** (C=1): decrypt the 14-bit payload with the per-kernel key,
  look the buffer up in the RCache hierarchy (L1 -> L2 -> RBT in memory)
  and compare the access range against the region bounds.
* **Type 3** (C=2): compare the access range against the power-of-two size
  embedded in the pointer — no RCache access at all (§5.3.3).

Timing (Figure 12): the LSU pipeline offers a *hiding window*; the check
stalls the pipeline only by ``max(0, bcu_latency - window)`` cycles.  With
the default 1-cycle L1 RCache the only bubble is the paper's case of a
single coalesced transaction that hits the L1 Dcache but misses the L1
RCache (1 cycle for an L2 RCache hit).  Dcache misses, multi-transaction
accesses and TLB misses widen the window and hide the check entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.bounds import Bounds
from repro.core.checker import ALLOW, AccessContext, CheckOutcome
from repro.core.crypto import IdCipher
from repro.core.pointer import PointerType, decode
from repro.core.rcache import L1RCache, L2RCache, RCacheEntry
from repro.core.violations import ReportPolicy, ViolationLog, ViolationRecord

__all__ = ["BCUConfig", "KernelSecurityContext", "BCUStats", "CheckOutcome",
           "BoundsCheckingUnit", "BCUAccessChecker"]


@dataclass
class BCUConfig:
    """Tunables of the BCU (the knobs swept in Figures 14, 15 and 17)."""

    l1_entries: int = 4
    l2_entries: int = 64
    l1_latency: int = 1          # cycles for an L1 RCache hit
    l2_latency: int = 3          # cycles for an L2 RCache hit (tag + data)
    rbt_fetch_latency: int = 120  # memory fetch of an RBT entry on L2 miss
    lsu_hiding_window: int = 2   # LSU pipeline slack for a 1-tx Dcache hit
    l1_policy: str = "fifo"
    check_per_lane: bool = False  # ablation: per-thread instead of per-warp
    type3_enabled: bool = True    # ablation: offset-optimised pointers
    # §6.2 intra-core mitigation: per-kernel RCache banks ("double and
    # partition"), priced separately by the hwcost model.
    partition_rcache: bool = False


@dataclass
class KernelSecurityContext:
    """Everything the BCU needs to check accesses of one running kernel."""

    kernel_id: int
    cipher: IdCipher
    rbt_read_entry: Callable[[int], Bounds]


@dataclass
class BCUStats:
    """Per-core BCU activity counters."""

    mem_instructions: int = 0
    checks_skipped_static: int = 0   # Type 1 pointers
    checks_type2: int = 0
    checks_type3: int = 0
    lane_comparisons: int = 0
    rbt_fills: int = 0
    stall_cycles: int = 0
    violations: int = 0

    @property
    def runtime_checks(self) -> int:
        return self.checks_type2 + self.checks_type3

    def reduction_percent(self) -> float:
        """Share of memory instructions filtered by static analysis (%)."""
        if self.mem_instructions == 0:
            return 0.0
        return 100.0 * self.checks_skipped_static / self.mem_instructions


class BoundsCheckingUnit:
    """One BCU instance per shader core."""

    def __init__(self, config: Optional[BCUConfig] = None,
                 log: Optional[ViolationLog] = None):
        self.config = config or BCUConfig()
        self.l1 = L1RCache(self.config.l1_entries, self.config.l1_policy,
                           partitioned=self.config.partition_rcache)
        self.l2 = L2RCache(self.config.l2_entries,
                           partitioned=self.config.partition_rcache)
        # Note: an empty ViolationLog is falsy, so test against None.
        self.log = log if log is not None else ViolationLog(
            policy=ReportPolicy.LOG)
        self.stats = BCUStats()

    # -- lifecycle -----------------------------------------------------------

    def flush(self, kernel_id: Optional[int] = None) -> None:
        """Flush both RCache levels (kernel end / context switch, §5.5).

        ``kernel_id`` scopes the flush to one terminating kernel's bank
        when the RCaches are partitioned (§6.2); ``None`` flushes all.
        """
        self.l1.flush(kernel_id)
        self.l2.flush(kernel_id)

    def reset_stats(self) -> None:
        self.stats = BCUStats()
        self.l1.stats.reset()
        self.l2.stats.reset()

    def reset(self) -> None:
        """Full device reset: drop every RCache bank and zero stats."""
        self.flush()
        self.reset_stats()

    # -- checking ------------------------------------------------------------

    def check(self, ctx: KernelSecurityContext, pointer: int,
              lo: int, hi: int, *, is_store: bool,
              num_transactions: int = 1, dcache_hit: bool = True,
              tlb_miss: bool = False, num_lanes: int = 1,
              cycle: int = 0) -> CheckOutcome:
        """Check one warp memory instruction covering bytes ``[lo, hi]``.

        ``pointer`` is the tagged base-pointer value the address was
        computed from; ``num_transactions``/``dcache_hit``/``tlb_miss``
        describe the concurrent LSU activity and only affect timing.
        """
        self.stats.mem_instructions += 1
        tp = decode(pointer)

        if tp.ptype is PointerType.UNPROTECTED:
            self.stats.checks_skipped_static += 1
            return CheckOutcome(allowed=True, stall_cycles=0)

        if tp.ptype is PointerType.OFFSET_OPT:
            if self.config.type3_enabled:
                return self._check_type3(ctx, tp, lo, hi, is_store=is_store,
                                         num_lanes=num_lanes, cycle=cycle)
            # Ablation (Type 3 off): the payload is a log2 size, not an
            # encrypted buffer ID — running it through _check_type2 would
            # decrypt garbage and fetch a bogus RBT entry.  The driver
            # re-encodes eligible buffers as Type 2 at launch when the
            # ablation is active, so only pointers tagged under a
            # different configuration land here; check them against the
            # true (power-of-two) region they encode, accounted as the
            # Type-2 check the ablated hardware would have issued.
            self.stats.checks_type2 += 1
            return self._check_offset_range(ctx, tp, lo, hi,
                                            is_store=is_store,
                                            num_lanes=num_lanes, cycle=cycle)

        return self._check_type2(ctx, tp, lo, hi, is_store=is_store,
                                 num_transactions=num_transactions,
                                 dcache_hit=dcache_hit, tlb_miss=tlb_miss,
                                 num_lanes=num_lanes, cycle=cycle)

    def _lane_cost(self, num_lanes: int) -> int:
        """Comparator invocations for the per-lane checking ablation."""
        if self.config.check_per_lane:
            self.stats.lane_comparisons += num_lanes
            # Serialised per-lane comparison: one extra cycle per lane pair
            # beyond what the warp-level comparator covers.
            return max(0, (num_lanes + 1) // 2 - 1)
        self.stats.lane_comparisons += 1
        return 0

    def _hiding_window(self, num_transactions: int, dcache_hit: bool,
                       tlb_miss: bool) -> int:
        """Cycles of LSU latency the BCU can hide behind (Figure 12)."""
        window = self.config.lsu_hiding_window
        window += max(0, num_transactions - 1)
        if not dcache_hit:
            window += 20  # L2 data-cache round trip at minimum
        if tlb_miss:
            window += 100  # page-walk latency overlaps RBT fetch (§5.5)
        return window

    def _check_type3(self, ctx: KernelSecurityContext, tp, lo: int, hi: int,
                     *, is_store: bool, num_lanes: int,
                     cycle: int) -> CheckOutcome:
        self.stats.checks_type3 += 1
        return self._check_offset_range(ctx, tp, lo, hi, is_store=is_store,
                                        num_lanes=num_lanes, cycle=cycle)

    def _check_offset_range(self, ctx: KernelSecurityContext, tp,
                            lo: int, hi: int, *, is_store: bool,
                            num_lanes: int, cycle: int) -> CheckOutcome:
        """Compare ``[lo, hi]`` against the pow2 region in the payload."""
        stall = self._lane_cost(num_lanes)
        size = 1 << tp.payload
        base = tp.va
        if lo >= base and hi < base + size:
            if stall:
                self.stats.stall_cycles += stall
            return CheckOutcome(allowed=True, stall_cycles=stall)
        record = ViolationRecord(kernel_id=ctx.kernel_id, buffer_id=-1,
                                 lo=lo, hi=hi, is_store=is_store,
                                 reason="type3-offset", cycle=cycle)
        return self._violate(record, stall)

    def _check_type2(self, ctx: KernelSecurityContext, tp, lo: int, hi: int,
                     *, is_store: bool, num_transactions: int,
                     dcache_hit: bool, tlb_miss: bool, num_lanes: int,
                     cycle: int) -> CheckOutcome:
        self.stats.checks_type2 += 1
        buffer_id = ctx.cipher.decrypt(tp.payload)

        entry = self.l1.lookup(ctx.kernel_id, buffer_id)
        rbt_fill = False
        check_latency = self.config.l1_latency
        if entry is None:
            entry = self.l2.lookup(ctx.kernel_id, buffer_id)
            if entry is not None:
                check_latency = self.config.l2_latency
            else:
                # Initial miss: fetch from the RBT image in device memory,
                # bypassing translation (§5.4), then fill both levels.
                # The fetch is a memory access — it delays this warp's
                # result (check_latency) but does not block issue.
                bounds = ctx.rbt_read_entry(buffer_id)
                entry = RCacheEntry(buffer_id=buffer_id,
                                    kernel_id=ctx.kernel_id, bounds=bounds)
                self.l2.fill(entry)
                check_latency = (self.config.l2_latency
                                 + self.config.rbt_fetch_latency)
                rbt_fill = True
                self.stats.rbt_fills += 1
            self.l1.fill(entry)

        window = self._hiding_window(num_transactions, dcache_hit, tlb_miss)
        # Only the RCache pipeline portion can bubble the issue stage; an
        # RBT memory fetch is overlapped like any other memory latency.
        pipeline_latency = min(check_latency, self.config.l2_latency)
        stall = max(0, pipeline_latency - window) + self._lane_cost(num_lanes)

        bounds = entry.bounds
        if not bounds.valid:
            record = ViolationRecord(kernel_id=ctx.kernel_id,
                                     buffer_id=buffer_id, lo=lo, hi=hi,
                                     is_store=is_store, reason="invalid-id",
                                     cycle=cycle)
            return self._violate(record, stall, check_latency, rbt_fill)
        if is_store and bounds.read_only:
            record = ViolationRecord(kernel_id=ctx.kernel_id,
                                     buffer_id=buffer_id, lo=lo, hi=hi,
                                     is_store=True, reason="read-only",
                                     cycle=cycle)
            return self._violate(record, stall, check_latency, rbt_fill)
        if not bounds.contains_range(lo, hi):
            record = ViolationRecord(kernel_id=ctx.kernel_id,
                                     buffer_id=buffer_id, lo=lo, hi=hi,
                                     is_store=is_store, reason="out-of-bounds",
                                     cycle=cycle)
            return self._violate(record, stall, check_latency, rbt_fill)

        if stall:
            self.stats.stall_cycles += stall
        return CheckOutcome(allowed=True, stall_cycles=stall,
                            check_latency=check_latency, rbt_fill=rbt_fill)

    def _violate(self, record: ViolationRecord, stall: int,
                 check_latency: int = 0,
                 rbt_fill: bool = False) -> CheckOutcome:
        self.stats.violations += 1
        if stall:
            self.stats.stall_cycles += stall
        self.log.report(record)  # raises under the PRECISE policy
        return CheckOutcome(allowed=False, stall_cycles=stall,
                            check_latency=check_latency,
                            violation=record, rbt_fill=rbt_fill)

    def as_checker(self) -> "BCUAccessChecker":
        """This BCU behind the unified :class:`AccessChecker` protocol."""
        return BCUAccessChecker(self)


class BCUAccessChecker:
    """:class:`AccessChecker` facade over one :class:`BoundsCheckingUnit`.

    Kernels launched without GPUShield metadata (``ctx.security is
    None``) pass through for free — the BCU never even sees them, so its
    statistics keep counting only protected launches.
    """

    def __init__(self, bcu: BoundsCheckingUnit):
        self.bcu = bcu

    def check(self, ctx: AccessContext) -> CheckOutcome:
        if ctx.security is None:
            return ALLOW
        return self.bcu.check(
            ctx.security, ctx.base_pointer, ctx.lo, ctx.hi,
            is_store=ctx.is_store,
            num_transactions=ctx.num_transactions,
            dcache_hit=ctx.dcache_hit,
            tlb_miss=ctx.tlb_miss,
            num_lanes=ctx.num_lanes,
            cycle=ctx.cycle)
