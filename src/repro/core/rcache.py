"""The RBT cache (RCache) hierarchy of the BCU (paper §5.5).

Two levels per core:

* **L1 RCache** — tiny (default 4 entries), FIFO replacement, parallel tag
  lookup and data read, so a hit adds no pipeline bubble beyond the rule in
  Figure 12.  An LRU variant is provided for the replacement-policy
  ablation bench.
* **L2 RCache** — 64-entry fully associative, physically split into tag and
  data arrays: a hit needs one cycle for the tag match plus one for the
  data read (hence the 3-cycle L2 access of the default configuration).

Entries are tagged by (kernel_id, buffer_id) — the kernel-ID field is what
lets intra-core multi-kernel sharing work without flushes (paper §6.2).
Both levels are flushed on kernel termination or context switch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.bounds import Bounds


@dataclass(frozen=True)
class RCacheEntry:
    """One cached RBT entry: §5.5's 14b ID tag + 93-bit data payload."""

    buffer_id: int
    kernel_id: int
    bounds: Bounds

    @property
    def tag(self) -> Tuple[int, int]:
        return (self.kernel_id, self.buffer_id)


@dataclass
class RCacheStats:
    """Hit/miss counters, reported per level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction in [0, 1]; 1.0 when never accessed (vacuously hot)."""
        if self.accesses == 0:
            return 1.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class _BaseRCache:
    """Shared mechanics of both RCache levels (tag lookup + replacement).

    With ``partitioned=True`` (the §6.2 intra-core mitigation: "double and
    partition RCaches"), every kernel gets its own bank of ``entries``
    lines, so co-resident kernels cannot thrash each other's metadata.
    """

    def __init__(self, entries: int, policy: str = "fifo",
                 partitioned: bool = False):
        if entries <= 0:
            raise ValueError("RCache needs at least one entry")
        if policy not in ("fifo", "lru"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.capacity = entries
        self.policy = policy
        self.partitioned = partitioned
        self._banks: "dict[int, OrderedDict]" = {}
        self.stats = RCacheStats()

    def _bank(self, kernel_id: int) -> "OrderedDict":
        key = kernel_id if self.partitioned else 0
        bank = self._banks.get(key)
        if bank is None:
            bank = OrderedDict()
            self._banks[key] = bank
        return bank

    def lookup(self, kernel_id: int, buffer_id: int) -> Optional[RCacheEntry]:
        """Probe the cache; updates hit/miss statistics."""
        bank = self._bank(kernel_id)
        tag = (kernel_id, buffer_id)
        entry = bank.get(tag)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if self.policy == "lru":
            bank.move_to_end(tag)
        return entry

    def fill(self, entry: RCacheEntry) -> None:
        """Insert an entry, evicting the oldest (FIFO) / coldest (LRU)."""
        bank = self._bank(entry.kernel_id)
        tag = entry.tag
        if tag in bank:
            bank[tag] = entry
            if self.policy == "lru":
                bank.move_to_end(tag)
            return
        if len(bank) >= self.capacity:
            bank.popitem(last=False)
        bank[tag] = entry

    def flush(self, kernel_id: Optional[int] = None) -> None:
        """Drop entries (kernel termination / context switch, §5.5).

        With per-kernel banks (§6.2's "double and partition" mitigation)
        a terminating kernel drops only its own bank, so co-resident
        kernels keep their entries.  ``kernel_id=None`` — a context
        switch, or an unpartitioned cache whose single bank is shared —
        clears everything.
        """
        if kernel_id is None or not self.partitioned:
            self._banks.clear()
        else:
            self._banks.pop(kernel_id, None)

    def __len__(self) -> int:
        return sum(len(bank) for bank in self._banks.values())

    def __contains__(self, tag: Tuple[int, int]) -> bool:
        return any(tag in bank for bank in self._banks.values())


class L1RCache(_BaseRCache):
    """The 4-entry FIFO queue with parallel tag/data access (§5.5)."""

    def __init__(self, entries: int = 4, policy: str = "fifo",
                 partitioned: bool = False):
        super().__init__(entries, policy, partitioned)


class L2RCache(_BaseRCache):
    """The 64-entry fully associative level with split tag/data arrays."""

    def __init__(self, entries: int = 64, policy: str = "lru",
                 partitioned: bool = False):
        super().__init__(entries, policy, partitioned)
