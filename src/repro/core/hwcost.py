"""Analytic area/power model behind Table 3 (paper §5.6).

The paper synthesises the BCU's comparators (Verilog + Synopsys DC) and its
SRAM arrays (OpenRAM) in FreePDK 45nm at 1 GHz.  We replace synthesis with
an analytic model of the same four design points:

* range-comparator logic,
* the 4-entry FIFO L1 RCache (107 bits/entry),
* the 64-entry CAM tag array of the L2 RCache (14 bits/entry),
* the 64-entry SRAM data array of the L2 RCache (93 bits/entry).

Per-bit coefficients for each circuit *kind* are calibrated so that the
paper's exact configuration reproduces Table 3; costs then scale linearly
in bits, which is the first-order behaviour of small SRAM arrays and lets
the ablation benches price alternative RCache geometries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.bcu import BCUConfig

# Field widths of one RCache entry (paper §5.5).
ID_TAG_BITS = 14
BASE_ADDR_BITS = 48
SIZE_BITS = 32
READONLY_BITS = 1
KERNEL_ID_BITS = 12
L1_ENTRY_BITS = (ID_TAG_BITS + BASE_ADDR_BITS + SIZE_BITS
                 + READONLY_BITS + KERNEL_ID_BITS)   # 107
L2_TAG_ENTRY_BITS = ID_TAG_BITS                      # 14
L2_DATA_ENTRY_BITS = L1_ENTRY_BITS - ID_TAG_BITS     # 93


@dataclass(frozen=True)
class CostEstimate:
    """Cost of one hardware structure at the model's technology point."""

    name: str
    entries: Optional[int]
    sram_bytes: float
    area_mm2: float
    leakage_uw: float
    dynamic_mw: float


@dataclass(frozen=True)
class _Coefficients:
    """Per-bit cost of a circuit kind (calibrated at FreePDK45, 1 GHz)."""

    area_per_bit: float
    leakage_per_bit: float
    dynamic_per_bit: float


# Calibration: paper value / structure bits at the paper's design point.
_COEFFS: Dict[str, _Coefficients] = {
    "fifo": _Coefficients(0.0060 / 428, 26.40 / 428, 22.93 / 428),
    "cam_tag": _Coefficients(0.0166 / 896, 256.71 / 896, 55.39 / 896),
    "sram": _Coefficients(0.0568 / 5952, 499.13 / 5952, 104.63 / 5952),
    # Comparators: two 48-bit range comparators + the ID-decrypt datapath;
    # calibrated against the paper's single logic row (192 comparator bits).
    "logic": _Coefficients(0.0064 / 192, 17.51 / 192, 20.41 / 192),
}


class HardwareCostModel:
    """Prices GPUShield structures; defaults reproduce Table 3."""

    def __init__(self, tech_nm: int = 45, clock_ghz: float = 1.0):
        self.tech_nm = tech_nm
        self.clock_ghz = clock_ghz

    def _estimate(self, name: str, kind: str, bits: int,
                  entries: Optional[int]) -> CostEstimate:
        c = _COEFFS[kind]
        scale = (self.tech_nm / 45.0) ** 2 * (self.clock_ghz / 1.0)
        return CostEstimate(
            name=name,
            entries=entries,
            sram_bytes=bits / 8.0 if kind != "logic" else 0.0,
            area_mm2=bits * c.area_per_bit * (self.tech_nm / 45.0) ** 2,
            leakage_uw=bits * c.leakage_per_bit * (self.tech_nm / 45.0) ** 2,
            dynamic_mw=bits * c.dynamic_per_bit * scale,
        )

    def comparator(self) -> CostEstimate:
        """The BCU's address-range comparison logic."""
        return self._estimate("Comparators", "logic",
                              2 * BASE_ADDR_BITS * 2, None)

    def l1_rcache(self, entries: int = 4) -> CostEstimate:
        return self._estimate("L1 RCache", "fifo",
                              entries * L1_ENTRY_BITS, entries)

    def l2_rcache_tag(self, entries: int = 64) -> CostEstimate:
        return self._estimate("L2 RCache tag", "cam_tag",
                              entries * L2_TAG_ENTRY_BITS, entries)

    def l2_rcache_data(self, entries: int = 64) -> CostEstimate:
        return self._estimate("L2 RCache data", "sram",
                              entries * L2_DATA_ENTRY_BITS, entries)

    def per_core(self, config: Optional[BCUConfig] = None) -> List[CostEstimate]:
        """All BCU structures for one shader core (the rows of Table 3)."""
        config = config or BCUConfig()
        return [
            self.comparator(),
            self.l1_rcache(config.l1_entries),
            self.l2_rcache_tag(config.l2_entries),
            self.l2_rcache_data(config.l2_entries),
        ]

    def total(self, config: Optional[BCUConfig] = None) -> CostEstimate:
        """The 'Total' row of Table 3 (per core)."""
        rows = self.per_core(config)
        return CostEstimate(
            name="Total",
            entries=None,
            sram_bytes=sum(r.sram_bytes for r in rows),
            area_mm2=sum(r.area_mm2 for r in rows),
            leakage_uw=sum(r.leakage_uw for r in rows),
            dynamic_mw=sum(r.dynamic_mw for r in rows),
        )

    def per_gpu_sram_kb(self, num_cores: int,
                        config: Optional[BCUConfig] = None) -> float:
        """Total SRAM added across all cores (§5.6: 14.2KB / 21.3KB)."""
        return self.total(config).sram_bytes * num_cores / 1024.0


def table3(config: Optional[BCUConfig] = None) -> List[CostEstimate]:
    """Convenience: the five rows of Table 3 in paper order."""
    model = HardwareCostModel()
    rows = model.per_core(config)
    rows.append(model.total(config))
    return rows
