"""GPUShield core: pointer tagging, bounds metadata, RCaches, BCU, costs.

This package implements the paper's primary contribution (Section 5):

* :mod:`repro.core.pointer` — the three tagged-pointer formats of Figure 7.
* :mod:`repro.core.crypto` — per-kernel 14-bit buffer-ID encryption.
* :mod:`repro.core.bounds` — bounds metadata and the Region Bounds Table.
* :mod:`repro.core.rcache` — the L1 (FIFO) and L2 (fully-assoc) RCaches.
* :mod:`repro.core.bcu` — the bounds-checking unit and its pipeline timing.
* :mod:`repro.core.violations` — violation logging / reporting policies.
* :mod:`repro.core.shield` — a facade wiring compiler, driver and hardware.
* :mod:`repro.core.hwcost` — the analytic area/power model behind Table 3.
"""

from repro.core.bounds import Bounds, RegionBoundsTable, RBT_ENTRIES
from repro.core.crypto import IdCipher
from repro.core.pointer import (
    PointerType,
    TaggedPointer,
    make_base_pointer,
    make_offset_pointer,
    make_unprotected_pointer,
)
from repro.core.rcache import L1RCache, L2RCache, RCacheEntry
from repro.core.bcu import BCUAccessChecker, BoundsCheckingUnit, BCUConfig
from repro.core.checker import (
    AccessChecker,
    AccessContext,
    CheckOutcome,
    NullChecker,
    RecordingChecker,
)
from repro.core.violations import ReportPolicy, ViolationLog, ViolationRecord
from repro.core.shield import GPUShield, ShieldConfig

__all__ = [
    "AccessChecker",
    "AccessContext",
    "BCUAccessChecker",
    "NullChecker",
    "RecordingChecker",
    "Bounds",
    "RegionBoundsTable",
    "RBT_ENTRIES",
    "IdCipher",
    "PointerType",
    "TaggedPointer",
    "make_base_pointer",
    "make_offset_pointer",
    "make_unprotected_pointer",
    "L1RCache",
    "L2RCache",
    "RCacheEntry",
    "BoundsCheckingUnit",
    "BCUConfig",
    "CheckOutcome",
    "ReportPolicy",
    "ViolationLog",
    "ViolationRecord",
    "GPUShield",
    "ShieldConfig",
]
