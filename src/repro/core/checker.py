"""The unified per-access checker protocol.

Every per-access protection mechanism — GPUShield's BCU, the
CUDA-MEMCHECK shadow-table walk, in-kernel software guards — answers the
same question: *may this warp-level access of bytes ``[lo, hi]`` proceed,
and what does deciding cost?*  This module gives that question one
vocabulary so the memory pipeline (:mod:`repro.gpu.pipeline`) carries a
single hook instead of tool-specific plumbing:

* :class:`AccessContext` — everything the address-gathering stage knows
  about one coalesced warp access (the BCU's exact vantage, Figure 12);
* :class:`CheckOutcome` — the verdict plus its timing footprint;
* :class:`AccessChecker` — the protocol: ``check(ctx) -> CheckOutcome``.

Launch-granularity tools (clArmor, GMOD) do not fit a per-access seam;
they interpose around kernel launches instead — see
:class:`repro.analysis.harness.LaunchInterposer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.core.violations import ViolationRecord


@dataclass(frozen=True)
class AccessContext:
    """One warp-level memory access as the check hardware sees it.

    ``security`` is the launch's
    :class:`~repro.core.bcu.KernelSecurityContext` (``None`` when the
    kernel runs without GPUShield metadata).  ``num_transactions``,
    ``dcache_hit`` and ``tlb_miss`` describe the concurrent LSU activity
    — checkers may use them to compute how much latency they can hide.
    """

    security: Optional[object]
    base_pointer: int
    lo: int                      # lowest byte touched
    hi: int                      # highest byte touched (inclusive)
    is_store: bool
    space: str
    num_transactions: int = 1
    dcache_hit: bool = True
    tlb_miss: bool = False
    num_lanes: int = 1
    cycle: int = 0


@dataclass(frozen=True)
class CheckOutcome:
    """Result of one warp-level bounds check.

    ``stall_cycles`` is an *issue bubble*: the pipeline cannot issue for
    that many cycles (Figure 12's 1-cycle penalty case).  ``check_latency``
    is how long until the bounds are resolved; the warp's memory result
    cannot commit earlier, but other warps keep running — on an RBT fill
    (L2 RCache miss) this is a full memory fetch, hidden behind TLB-miss
    and DRAM latency in the common case (§5.5).
    """

    allowed: bool
    stall_cycles: int
    check_latency: int = 0
    violation: Optional["ViolationRecord"] = None
    rbt_fill: bool = False


#: The trivially-allowing outcome shared by pass-through checkers.
ALLOW = CheckOutcome(allowed=True, stall_cycles=0)


@runtime_checkable
class AccessChecker(Protocol):
    """Anything that can veto (and price) a warp-level memory access."""

    def check(self, ctx: AccessContext) -> CheckOutcome:
        """Judge one access; never raises for an allowed access."""
        ...


class NullChecker:
    """The no-protection baseline: every access is free and allowed."""

    def check(self, ctx: AccessContext) -> CheckOutcome:
        return ALLOW


class RecordingChecker:
    """Test helper: records every context, optionally delegating.

    Wrap a real checker to observe the exact ``(lo, hi)`` ranges the
    pipeline feeds it — the seam the pipeline tests use to prove a fake
    checker sees what the BCU sees.
    """

    def __init__(self, inner: Optional[AccessChecker] = None):
        self.inner = inner
        self.contexts: list = []

    def check(self, ctx: AccessContext) -> CheckOutcome:
        self.contexts.append(ctx)
        if self.inner is None:
            return ALLOW
        return self.inner.check(ctx)
