"""Bounds metadata and the Region Bounds Table (paper Figure 6, §5.2.3).

Each protected region (host-allocated buffer, local variable, or the whole
heap) has one :class:`Bounds` record.  The driver stores one record per
14-bit buffer ID in a per-kernel :class:`RegionBoundsTable` (RBT), a
16384-entry direct-mapped structure living in GPU global memory.

The in-memory wire format packs each entry into 12 bytes, matching the
paper's layout where the ``valid`` and ``readonly`` bits are physically
stored in the upper bits of the 48-bit base address::

    [8 bytes]  bit63 = valid, bit62 = readonly, bits[47:0] = base address
    [4 bytes]  32-bit size

The BCU fetches entries through this byte format (so tests can corrupt the
backing memory and observe real failures), while the driver keeps the
object view for convenience.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.crypto import ID_BITS, ID_SPACE
from repro.core.pointer import VA_MASK

RBT_ENTRIES = ID_SPACE  # 16384 entries, indexed by the 14-bit buffer ID
ENTRY_BYTES = 12
_VALID_BIT = 1 << 63
_READONLY_BIT = 1 << 62


@dataclass(frozen=True)
class Bounds:
    """Bounds metadata for one protected region (paper Figure 6)."""

    base_addr: int
    size: int
    read_only: bool = False
    valid: bool = True

    def __post_init__(self):
        if self.base_addr < 0 or self.base_addr > VA_MASK:
            raise ValueError(f"base address {self.base_addr:#x} exceeds 48 bits")
        if self.size < 0 or self.size >= (1 << 32):
            raise ValueError(f"size {self.size} does not fit in 32 bits")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base_addr + self.size

    def contains_range(self, lo: int, hi: int) -> bool:
        """True iff the closed byte range [lo, hi] lies inside the region."""
        return self.base_addr <= lo and hi < self.end

    def pack(self) -> bytes:
        """Encode to the 12-byte wire format used in device memory."""
        word = self.base_addr & VA_MASK
        if self.valid:
            word |= _VALID_BIT
        if self.read_only:
            word |= _READONLY_BIT
        return struct.pack("<QI", word, self.size)

    @classmethod
    def unpack(cls, blob: bytes) -> "Bounds":
        """Decode the 12-byte wire format."""
        if len(blob) != ENTRY_BYTES:
            raise ValueError(f"expected {ENTRY_BYTES} bytes, got {len(blob)}")
        word, size = struct.unpack("<QI", blob)
        return cls(
            base_addr=word & VA_MASK,
            size=size,
            read_only=bool(word & _READONLY_BIT),
            valid=bool(word & _VALID_BIT),
        )


_INVALID = Bounds(base_addr=0, size=0, read_only=False, valid=False)


class RegionBoundsTable:
    """The per-kernel RBT: 16384 direct-mapped :class:`Bounds` entries.

    The table is sparse in Python (a dict keyed by ID); ``lookup`` of an
    unassigned ID returns an *invalid* entry, which is what the hardware
    would read from the zero-initialised table — a forged/incorrectly
    decrypted ID therefore fails its bounds check (paper §6.1).
    """

    def __init__(self):
        self._entries: dict[int, Bounds] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _check_id(buffer_id: int) -> None:
        if not 0 <= buffer_id < RBT_ENTRIES:
            raise ValueError(f"buffer id {buffer_id} out of {ID_BITS}-bit range")

    def set(self, buffer_id: int, bounds: Bounds) -> None:
        """Install bounds metadata at ``buffer_id`` (driver-only operation)."""
        self._check_id(buffer_id)
        self._entries[buffer_id] = bounds

    def invalidate(self, buffer_id: int) -> None:
        """Clear an entry (buffer freed before kernel completion)."""
        self._check_id(buffer_id)
        self._entries.pop(buffer_id, None)

    def lookup(self, buffer_id: int) -> Bounds:
        """Read the entry for ``buffer_id`` (invalid entry if unassigned)."""
        self._check_id(buffer_id)
        return self._entries.get(buffer_id, _INVALID)

    def assigned_ids(self):
        """IDs currently holding valid metadata (driver bookkeeping)."""
        return sorted(self._entries)

    # -- device-memory image ------------------------------------------------

    @property
    def image_size(self) -> int:
        """Bytes needed for the full table in device memory."""
        return RBT_ENTRIES * ENTRY_BYTES

    def entry_offset(self, buffer_id: int) -> int:
        """Byte offset of an entry inside the device-memory image."""
        self._check_id(buffer_id)
        return buffer_id * ENTRY_BYTES

    def write_image(self, write, base_addr: int) -> None:
        """Serialise assigned entries through ``write(addr, bytes)``.

        Only assigned entries are written; the surrounding pages are
        expected to be zero-initialised (all-invalid) by the allocator.
        """
        for buffer_id, bounds in self._entries.items():
            write(base_addr + self.entry_offset(buffer_id), bounds.pack())

    @staticmethod
    def read_entry(read, base_addr: int, buffer_id: int) -> Bounds:
        """Fetch one entry through ``read(addr, size) -> bytes``.

        This is the path the BCU uses on an L2 RCache miss: a physical
        read of the table image, bypassing address translation (§5.4).
        """
        RegionBoundsTable._check_id(buffer_id)
        blob = read(base_addr + buffer_id * ENTRY_BYTES, ENTRY_BYTES)
        return Bounds.unpack(blob)
