"""GPUShield facade: one object bundling the mechanism's configuration.

A :class:`GPUShield` instance is handed to the driver and the GPU model:

* the driver consults it to decide whether to assign buffer IDs, encrypt
  them, tag pointers and materialise the RBT (paper §5.4);
* the GPU instantiates one :class:`~repro.core.bcu.BoundsCheckingUnit` per
  shader core through :meth:`make_bcu`, all feeding a shared violation log;
* after a run, aggregate statistics (L1 RCache hit rate, static-filtering
  rate, violation counts) are read back here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.bcu import BCUConfig, BoundsCheckingUnit
from repro.core.violations import ReportPolicy, ViolationLog, ViolationRecord


@dataclass
class ShieldConfig:
    """Top-level GPUShield switches.

    ``enabled=False`` reproduces the paper's *no bounds checking* baseline:
    the driver leaves pointers untagged and the BCU never engages.
    ``static_analysis`` toggles the compiler filtering of Figure 17.

    ``id_budget`` caps the buffer IDs a single kernel may consume; when a
    launch would exceed it the driver merges adjacent buffers onto shared
    IDs with merged bounds (the §6.3 fallback).  ``fine_grained_heap``
    enables the paper's future-work extension: individual device-malloc
    allocations get their own IDs (from ``heap_id_pool`` reserved slots)
    instead of the single whole-heap region.
    """

    enabled: bool = True
    static_analysis: bool = True
    policy: ReportPolicy = ReportPolicy.LOG
    bcu: BCUConfig = field(default_factory=BCUConfig)
    id_budget: int = 16384
    fine_grained_heap: bool = False
    heap_id_pool: int = 64


class GPUShield:
    """The deployed mechanism: configuration + per-core BCUs + shared log."""

    def __init__(self, config: Optional[ShieldConfig] = None,
                 mailbox_write: Optional[Callable[[bytes], None]] = None):
        self.config = config or ShieldConfig()
        self.log = ViolationLog(policy=self.config.policy,
                                mailbox_write=mailbox_write)
        self._bcus: List[BoundsCheckingUnit] = []

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def make_bcu(self, engine: str = "slow") -> BoundsCheckingUnit:
        """Create the BCU for one shader core (shared violation log).

        ``engine="fast"`` returns the bit-identical fast-lane variant
        (memoized pointer decode, flat RCache banks) — see
        :mod:`repro.engine`.
        """
        if engine == "fast":
            # Imported lazily: fastpath pulls in the gpu package, which
            # imports this module back at package-import time.
            from repro.gpu.fastpath import FastBoundsCheckingUnit
            bcu: BoundsCheckingUnit = FastBoundsCheckingUnit(
                self.config.bcu, log=self.log)
        else:
            bcu = BoundsCheckingUnit(self.config.bcu, log=self.log)
        self._bcus.append(bcu)
        return bcu

    # -- aggregate statistics -------------------------------------------------

    @property
    def bcus(self) -> List[BoundsCheckingUnit]:
        return list(self._bcus)

    def violations(self) -> List[ViolationRecord]:
        """All logged violations so far (without draining)."""
        return list(self.log.records)

    def drain_violations(self) -> List[ViolationRecord]:
        """End-of-kernel error report (paper §5.5.2)."""
        return self.log.drain()

    def l1_hit_rate(self) -> float:
        """L1 RCache hit rate over all cores (Figures 15/16)."""
        hits = sum(b.l1.stats.hits for b in self._bcus)
        accesses = sum(b.l1.stats.accesses for b in self._bcus)
        if accesses == 0:
            return 1.0
        return hits / accesses

    def l2_hit_rate(self) -> float:
        hits = sum(b.l2.stats.hits for b in self._bcus)
        accesses = sum(b.l2.stats.accesses for b in self._bcus)
        if accesses == 0:
            return 1.0
        return hits / accesses

    def reduction_percent(self) -> float:
        """Runtime-check reduction achieved by static analysis (Fig. 17)."""
        mem = sum(b.stats.mem_instructions for b in self._bcus)
        skipped = sum(b.stats.checks_skipped_static for b in self._bcus)
        if mem == 0:
            return 0.0
        return 100.0 * skipped / mem

    def total_stall_cycles(self) -> int:
        return sum(b.stats.stall_cycles for b in self._bcus)

    def total_rbt_fills(self) -> int:
        return sum(b.stats.rbt_fills for b in self._bcus)

    def reset_stats(self) -> None:
        for bcu in self._bcus:
            bcu.reset_stats()
