"""Tagged-pointer formats used by GPUShield (paper Figure 7).

A pointer is a 64-bit value.  The low 48 bits are the virtual address; the
upper 16 bits carry GPUShield metadata:

* bits ``[63:62]`` — the *C* field selecting the pointer type;
* bits ``[61:48]`` — a 14-bit payload whose meaning depends on *C*.

==== ===================== =============================================
C    name                  payload
==== ===================== =============================================
0    ``UNPROTECTED``       unused (static analysis proved safety: Type 1)
1    ``BASE``              encrypted 14-bit buffer ID (Type 2)
2    ``OFFSET_OPT``        log2 of the (power-of-two padded) size (Type 3)
==== ===================== =============================================

Pointer arithmetic on tagged pointers must only touch the low 48 bits so
the metadata survives address computation — :func:`tagged_add` implements
exactly that, mirroring how real hardware ignores the upper bits during
effective-address generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.utils.bitops import bit_slice, mask, set_bit_slice, to_unsigned64

VA_BITS = 48
VA_MASK = mask(VA_BITS)
PAYLOAD_BITS = 14
PAYLOAD_LO = VA_BITS
TYPE_LO = VA_BITS + PAYLOAD_BITS
TYPE_BITS = 2


class PointerType(IntEnum):
    """The C field of Figure 7."""

    UNPROTECTED = 0
    BASE = 1
    OFFSET_OPT = 2


@dataclass(frozen=True)
class TaggedPointer:
    """A decoded view of a 64-bit tagged pointer.

    ``raw`` is the canonical representation stored in registers and memory;
    the other fields are derived.  Use :func:`decode` to build one.
    """

    raw: int
    ptype: PointerType
    payload: int
    va: int

    def __int__(self) -> int:
        return self.raw


def encode(va: int, ptype: PointerType, payload: int = 0) -> int:
    """Pack a virtual address, pointer type and payload into 64 bits."""
    if va < 0 or va > VA_MASK:
        raise ValueError(f"virtual address {va:#x} does not fit in {VA_BITS} bits")
    raw = va
    raw = set_bit_slice(raw, PAYLOAD_LO, PAYLOAD_BITS, payload)
    raw = set_bit_slice(raw, TYPE_LO, TYPE_BITS, int(ptype))
    return raw


def decode(raw: int) -> TaggedPointer:
    """Split a 64-bit pointer into its type, payload and virtual address."""
    raw = to_unsigned64(raw)
    type_field = bit_slice(raw, TYPE_LO, TYPE_BITS)
    try:
        ptype = PointerType(type_field)
    except ValueError:
        # C=3 is reserved; hardware treats it as unprotected but a decoder
        # flagging it helps tests catch corrupted tags.
        ptype = PointerType.UNPROTECTED
    return TaggedPointer(
        raw=raw,
        ptype=ptype,
        payload=bit_slice(raw, PAYLOAD_LO, PAYLOAD_BITS),
        va=raw & VA_MASK,
    )


def make_unprotected_pointer(va: int) -> int:
    """Type 1 pointer: static analysis proved all accesses in bounds."""
    return encode(va, PointerType.UNPROTECTED, 0)


def make_base_pointer(va: int, encrypted_id: int) -> int:
    """Type 2 pointer: carries the encrypted buffer ID for RBT lookup."""
    return encode(va, PointerType.BASE, encrypted_id)


def make_offset_pointer(va: int, log2_size: int) -> int:
    """Type 3 pointer: carries log2 of the padded buffer size (§5.3.3)."""
    if not 0 <= log2_size < (1 << PAYLOAD_BITS):
        raise ValueError(f"log2_size {log2_size} out of payload range")
    return encode(va, PointerType.OFFSET_OPT, log2_size)


def pointer_type(raw: int) -> PointerType:
    """Fast path: extract only the C field."""
    return decode(raw).ptype


def virtual_address(raw: int) -> int:
    """Strip metadata: the low 48 address bits."""
    return to_unsigned64(raw) & VA_MASK


def payload(raw: int) -> int:
    """Extract the 14-bit payload field."""
    return bit_slice(to_unsigned64(raw), PAYLOAD_LO, PAYLOAD_BITS)


def tagged_add(raw: int, delta: int) -> int:
    """Pointer arithmetic that preserves the metadata bits.

    The virtual-address field wraps modulo 2**48, exactly as address
    generation hardware that ignores the tag bits would behave.
    """
    raw = to_unsigned64(raw)
    meta = raw & ~VA_MASK
    return meta | ((raw + delta) & VA_MASK)


def retag(raw: int, ptype: PointerType, payload_value: int) -> int:
    """Replace the metadata of an existing pointer (used by the driver)."""
    return encode(virtual_address(raw), ptype, payload_value)
