"""Runner job kind ``device.selftest``: prove reset == fresh on this host.

One job runs a benchmark twice under the same seed — once on a freshly
constructed device, once on a device that has already executed the
workload and been :meth:`~repro.device.device.GpuDevice.reset` — and
compares digests of everything observable: cycles, instruction counts,
buffer contents and violation totals.  Fanned out by the runner it
doubles as a cheap per-worker sanity gate that the warm path holds the
bit-identity contract in whatever environment the pool forked into.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.analysis.harness import WorkloadRunner
from repro.core.shield import ShieldConfig
from repro.device.cache import warm_devices
from repro.device.device import GpuDevice
from repro.engine import engine as engine_ctx
from repro.gpu.config import nvidia_config


def _digest_run(runner: WorkloadRunner, record) -> str:
    h = hashlib.sha256()
    h.update(repr((record.cycles, record.instructions,
                   record.mem_instructions, record.transactions,
                   record.launches, record.violations,
                   record.aborted)).encode())
    for name in sorted(runner.buffers):
        h.update(runner.session.driver.read(runner.buffers[name]))
    snap = runner.session.stats.snapshot()
    h.update(repr(sorted(snap.as_dict().items())).encode())
    return h.hexdigest()[:16]


def _run_once(workload_name: str, device: GpuDevice, seed: int) -> str:
    from repro.workloads.suite import get_benchmark
    workload = get_benchmark(workload_name).build()
    # shield=None is correct here: the runner adopts the passed device
    # as-is, and the shield already lives inside it.
    runner = WorkloadRunner(workload, config=device.config,
                            shield=None, seed=seed, device=device)
    record = runner.run()
    return _digest_run(runner, record)


def device_selftest_job(payload: dict, ctx=None) -> dict:
    """Runner entrypoint: fresh-vs-reset digest equality for one cell.

    Payload keys: ``benchmark`` (default ``vectoradd``), ``seed``
    (default 11), ``engine`` (default: process engine), ``shielded``
    (default True).
    """
    bench = payload.get("benchmark", "vectoradd")
    seed = int(payload.get("seed", 11))
    eng: Optional[str] = payload.get("engine")
    shield = (ShieldConfig(enabled=True)
              if payload.get("shielded", True) else None)
    config = nvidia_config(num_cores=2)

    def run_pair() -> dict:
        with warm_devices(False):
            fresh = GpuDevice(config, shield=shield, seed=seed)
            fresh_digest = _run_once(bench, fresh, seed)
            warmed = GpuDevice(config, shield=shield, seed=seed + 1)
            _run_once(bench, warmed, seed + 1)   # dirty the device
            warmed.reset(seed)
            reset_digest = _run_once(bench, warmed, seed)
        return {"fresh": fresh_digest, "reset": reset_digest,
                "identical": fresh_digest == reset_digest}

    if eng:
        with engine_ctx(eng):
            result = run_pair()
    else:
        result = run_pair()

    if ctx is not None:
        counters = ctx.stats.counters("device.selftest")
        counters["runs"] = 1
        counters["identical"] = int(result["identical"])
    if not result["identical"]:
        raise AssertionError(
            f"device reset diverged from fresh construction on "
            f"{bench!r}: fresh={result['fresh']} reset={result['reset']}")
    return {"benchmark": bench, "seed": seed,
            "engine": eng or "default", **result}
