"""The long-lived GPU device: one driver + GPU + shield, reusable.

Every harness used to cold-construct the whole stack per run (driver,
GPU, caches, TLBs, RCaches, RBT plumbing) and throw it away afterwards.
:class:`GpuDevice` inverts that lifetime: the device outlives any one
workload, and callers return it to a known state instead of rebuilding.

Three lifecycle operations:

* :meth:`reset` — back to a **bit-identical post-construction state**
  (optionally under a new seed).  This is the warm path: a reset device
  is observably indistinguishable — cycles, stats, memory contents,
  violation records — from a freshly constructed one with the same
  seed, under both the slow and fast engines.
* :meth:`snapshot` / :meth:`restore` — capture and re-install the
  *architectural* state (memory, page table, allocations, heap, RNG
  stream, kernel counter, undrained violations).  Scratch state —
  caches, TLBs, RCaches, statistics, memo tables — is scrubbed on
  restore, exactly like the §5.5 context-switch RCache flush: timing
  structures never survive a context transition.
* the **launch queue** — :meth:`submit` / :meth:`submit_pair` enqueue
  prepared launches (sequential, or §6.2 co-resident pairs) and
  :meth:`drain` executes them FIFO; per-kernel teardown runs through
  the existing scoped RCache flush (partitioned flush per terminating
  ``kernel_id`` when §6.2 banking is on).

The distinction that makes reset correct is *architectural vs scratch*
state.  Architectural state defines what software can observe across
launches (memory bytes, mappings, allocator cursors, the RNG stream
feeding §5.4's key/ID draws, the kernel counter); scratch state only
shapes timing (cache/TLB/RCache contents, statistics) or memoizes pure
recomputation (pointer-decode and BAT caches).  Reset restores the
former to the construction image and flushes the latter in place — in
place because the fast engine binds line arrays, the page dict and
stats objects once at construction and must never see them replaced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.shield import GPUShield, ShieldConfig
from repro.core.violations import ViolationRecord
from repro.driver.driver import ArgValue, GpuDriver, LaunchContext
from repro.gpu.config import GPUConfig, nvidia_config
from repro.gpu.gpu import GPU, LaunchResult
from repro.isa.program import Kernel


class DeviceSnapshot:
    """Opaque capture of one device's architectural state.

    Snapshots capture :class:`~repro.driver.allocator.Buffer` objects by
    identity (the allocation list is append-only), so restoring an
    earlier snapshot invalidates any snapshot taken after it.
    """

    __slots__ = ("_driver_state", "_device_id")

    def __init__(self, driver_state: dict, device_id: int):
        self._driver_state = driver_state
        self._device_id = device_id


class GpuDevice:
    """One long-lived simulated GPU: driver, GPU, shield and a queue."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 shield: Optional[ShieldConfig] = None,
                 seed: int = 0xC0FFEE):
        self.config = config or nvidia_config()
        gpushield = GPUShield(shield) if shield is not None else None
        self.driver = GpuDriver(self.config, shield=gpushield, seed=seed)
        self.gpu = GPU(self.driver)
        self.engine = self.gpu.engine
        self.seed = seed
        #: Lifetime accounting (surfaced by the device cache stats).
        self.launches_run = 0
        self.reset_count = 0
        self._queue: List[Tuple[List[LaunchContext], str]] = []
        self._cache_key = None   # set by repro.device.cache on build
        # The reset target: the device exactly as constructed.  Taken
        # before any launch, so the image is small (a fresh device has
        # written almost nothing) and reset == "as new".
        self._baseline = self.snapshot()

    # -- convenience views ----------------------------------------------------

    @property
    def shield(self) -> GPUShield:
        return self.driver.shield

    @property
    def stats(self):
        """The GPU's unified :class:`~repro.analysis.stats.StatsRegistry`."""
        return self.gpu.stats

    # -- lifecycle -------------------------------------------------------------

    def snapshot(self) -> DeviceSnapshot:
        """Capture the current architectural state.

        Refuses while launches are queued: a snapshot must describe a
        quiesced device, not one with work in flight.
        """
        if self._queue:
            raise RuntimeError(
                "cannot snapshot a device with queued launches; "
                "drain() first")
        return DeviceSnapshot(self.driver.state_snapshot(), id(self))

    def restore(self, snap: DeviceSnapshot) -> None:
        """Re-install a snapshot's architectural state.

        Scratch state (caches, TLBs, RCaches, stats, memo tables, any
        checker/tracer the harness attached) is scrubbed rather than
        restored — the §5.5 context-switch contract — so the device
        resumes with cold timing structures and exact architecture.
        """
        if snap._device_id != id(self):
            raise ValueError("snapshot belongs to a different device")
        self._queue.clear()
        self.driver.restore_state(snap._driver_state)
        self.gpu.reset()

    def reset(self, seed: Optional[int] = None) -> None:
        """Return to the bit-identical post-construction state.

        With ``seed`` the device behaves exactly like a fresh
        ``GpuDevice(config, shield, seed=seed)``; without it, like a
        fresh device under the construction seed.
        """
        self.restore(self._baseline)
        if seed is None:
            seed = self.driver.seed
        self.driver.reseed(seed)
        self.seed = seed
        self.reset_count += 1

    def close(self) -> None:
        """Discard queued work; the device may be dropped or cached."""
        self._queue.clear()

    # -- the launch queue ------------------------------------------------------

    def submit(self, kernel: Kernel, args: Dict[str, ArgValue],
               workgroups: int, wg_size: int) -> LaunchContext:
        """Prepare one kernel launch and enqueue it (mode ``single``)."""
        launch = self.driver.launch(kernel, args, workgroups, wg_size)
        self._queue.append(([launch], "single"))
        return launch

    def submit_prepared(self, launch: LaunchContext) -> None:
        """Enqueue an already-prepared launch (mode ``single``)."""
        self._queue.append(([launch], "single"))

    def submit_pair(self, launches: Sequence[LaunchContext],
                    mode: str) -> None:
        """Enqueue prepared co-resident launches (§6.2 modes)."""
        self._queue.append((list(launches), mode))

    @property
    def pending(self) -> int:
        return len(self._queue)

    def drain(self) -> List[Tuple[LaunchResult, List[ViolationRecord]]]:
        """Execute every queued entry FIFO; returns one (result,
        violations) per entry.

        Teardown is per kernel: each launch is ``finish``-ed as its
        entry completes, and kernel termination flushes the RCaches
        through the existing scoped path (the partitioned per-kernel
        bank flush when §6.2 RCache partitioning is enabled).
        """
        out: List[Tuple[LaunchResult, List[ViolationRecord]]] = []
        while self._queue:
            launches, mode = self._queue.pop(0)
            result = self.gpu.run(
                launches[0] if mode == "single" else launches, mode=mode)
            violations: List[ViolationRecord] = []
            for launch in launches:
                violations.extend(self.driver.finish(launch))
            self.launches_run += len(launches)
            out.append((result, violations))
        return out

    # -- synchronous conveniences (the session facade's surface) ---------------

    def run(self, kernel: Kernel, args: Dict[str, ArgValue],
            workgroups: int, wg_size: int
            ) -> Tuple[LaunchResult, List[ViolationRecord]]:
        """Submit one launch and drain: (result, violation report)."""
        self.submit(kernel, args, workgroups, wg_size)
        return self.drain()[-1]

    def run_pair(self, launches: Sequence[LaunchContext], mode: str
                 ) -> Tuple[LaunchResult, List[ViolationRecord]]:
        """Submit prepared co-resident launches and drain."""
        self.submit_pair(launches, mode)
        return self.drain()[-1]
