"""The device layer: long-lived GPUs with reset/snapshot and a warm cache."""

from repro.device.cache import (
    MAX_IDLE_PER_KEY,
    acquire_device,
    device_cache_stats,
    device_fingerprint,
    max_idle_per_key,
    release_device,
    reset_device_cache,
    set_max_idle_per_key,
    set_warm_devices,
    warm_devices,
    warm_devices_enabled,
)
from repro.device.device import DeviceSnapshot, GpuDevice
from repro.device.memo import (
    clear_warm_memo,
    provision_seconds,
    warm_memo_stats,
    workload_fingerprint,
)

__all__ = [
    "clear_warm_memo",
    "provision_seconds",
    "warm_memo_stats",
    "workload_fingerprint",
    "DeviceSnapshot",
    "GpuDevice",
    "MAX_IDLE_PER_KEY",
    "acquire_device",
    "device_cache_stats",
    "device_fingerprint",
    "max_idle_per_key",
    "release_device",
    "reset_device_cache",
    "set_max_idle_per_key",
    "set_warm_devices",
    "warm_devices",
    "warm_devices_enabled",
]
