"""Warm-path memoization riding on the long-lived device layer.

Two content-addressed caches, both alive only while warm device reuse
is enabled (the cold leg of ``bench --compare-warm`` sees none of this):

* the **cell memo** — the full :class:`~repro.analysis.results.RunRecord`
  of a plain ``run_workload`` cell, keyed by everything that determines
  it: the workload's content fingerprint, the device fingerprint
  (config, shield, resolved engine) and the seed.  The artifact suite
  re-runs identical cells across figures (Figure 17 and the Figure 19
  matrix re-measure Figure 14's base and default-shield cells); under
  the determinism contract those repeats are bit-identical by
  construction, so the warm path replays the record instead of
  re-simulating.  Only the hook-free, pad-free, mutator-free path
  memoizes — tool runners and attack harnesses always execute.
* the **init-bytes cache** — the NumPy-generated initial contents of a
  workload buffer, keyed by ``(init kind, word count, seed)``.  The
  bytes still get written into device memory every run (memory state is
  an observable); only the generation is reused.

Also home to the provisioning clock: the harness wraps device
acquisition + buffer setup in :func:`provision_span`, and
``bench --compare-warm`` reports the cold/warm aggregate of exactly the
path the warm layer owns.

Everything here is telemetry or replay of already-verified-identical
results: none of it feeds the stats registries that run digests are
built from.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import asdict
from typing import Callable, Dict, Optional, Tuple

from repro.device.cache import device_fingerprint, warm_devices_enabled

#: Bounds on retained entries; both caches evict oldest-first (plain
#: dict insertion order) — the suite's working set is far smaller.
_CELL_LIMIT = 4096
_INIT_LIMIT = 1024

_cells: Dict[Tuple, object] = {}
_init_bytes: Dict[Tuple, bytes] = {}
_stats: Dict[str, int] = {}
_provision_seconds = 0.0


def _zeroed() -> Dict[str, int]:
    return {"cell_hits": 0, "cell_misses": 0,
            "init_hits": 0, "init_misses": 0}


_stats.update(_zeroed())


def workload_fingerprint(workload) -> str:
    """Content digest of a workload: buffers, kernels, launch geometry.

    Every constituent is a dataclass whose repr enumerates all fields
    (``Instr`` down to operands and access IDs), so equal fingerprints
    mean the workloads would drive a device identically.
    """
    blob = repr((workload.name, workload.repeats,
                 tuple(workload.buffers), tuple(workload.runs)))
    return hashlib.sha256(blob.encode()).hexdigest()


def cell_key(workload, config, shield, seed: int) -> Tuple:
    return (workload_fingerprint(workload),
            device_fingerprint(config, shield), seed)


def cell_get(key: Tuple):
    """The memoized record for ``key`` (a fresh copy), or ``None``."""
    if not warm_devices_enabled():
        return None
    record = _cells.get(key)
    if record is None:
        _stats["cell_misses"] += 1
        return None
    _stats["cell_hits"] += 1
    return type(record)(**asdict(record))


def cell_put(key: Tuple, record) -> None:
    if not warm_devices_enabled():
        return
    if len(_cells) >= _CELL_LIMIT:
        _cells.pop(next(iter(_cells)))
    _cells[key] = type(record)(**asdict(record))


def init_payload(kind: str, n_words: int, seed: int,
                 build: Callable[[], bytes]) -> bytes:
    """The initial bytes for a buffer spec, generated once per content."""
    if not warm_devices_enabled():
        return build()
    key = (kind, n_words, seed)
    data = _init_bytes.get(key)
    if data is None:
        _stats["init_misses"] += 1
        data = build()
        if len(_init_bytes) >= _INIT_LIMIT:
            _init_bytes.pop(next(iter(_init_bytes)))
        _init_bytes[key] = data
    else:
        _stats["init_hits"] += 1
    return data


@contextmanager
def provision_span():
    """Accumulate the enclosed wall time into the provisioning clock."""
    global _provision_seconds
    start = time.perf_counter()
    try:
        yield
    finally:
        _provision_seconds += time.perf_counter() - start


def provision_seconds() -> float:
    return _provision_seconds


def warm_memo_stats() -> Dict[str, int]:
    out = dict(_stats)
    out["cells"] = len(_cells)
    return out


def clear_warm_memo() -> None:
    """Drop both caches, zero the counters and the provisioning clock."""
    global _provision_seconds
    _cells.clear()
    _init_bytes.clear()
    _stats.clear()
    _stats.update(_zeroed())
    _provision_seconds = 0.0


def memoized_run(workload, config, shield, config_name: str, seed: int,
                 run: Callable[[], object],
                 key: Optional[Tuple] = None):
    """Run-or-replay one plain cell; ``run`` executes on a miss."""
    key = key or cell_key(workload, config, shield, seed)
    record = cell_get(key)
    if record is None:
        record = run()
        cell_put(key, record)
    else:
        record.config = config_name
    return record
