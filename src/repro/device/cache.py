"""The per-process warm device cache.

Harnesses that used to build a fresh :class:`~repro.device.device.GpuDevice`
per run instead :func:`acquire_device` / :func:`release_device` around
it.  Released devices idle in a pool keyed by a **configuration
fingerprint** — ``(GPUConfig, ShieldConfig, resolved engine)`` — and a
later acquisition with the same fingerprint pops one and :meth:`resets
<repro.device.device.GpuDevice.reset>` it under the caller's seed
instead of reconstructing the whole stack.  Reset is bit-identical to
fresh construction, so the warm path changes wall-clock only.

The seed is deliberately *not* part of the key: campaigns vary the seed
per case, and reset re-seeds for free.  The resolved engine *is* part
of the key: the engine-differential drivers flip the process default
mid-run, and a device built under one engine must never serve the
other.

The cache is per process.  Runner workers fork per attempt, so each
child starts cold and warms up across the cases of its own shard; the
inline (``--jobs 0``) path shares one pool across every job.  The
counters here are merged into the runner's stats registry by
``repro.runner.pool``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.core.shield import ShieldConfig
from repro.device.device import GpuDevice
from repro.engine import resolve as resolve_engine
from repro.gpu.config import GPUConfig, nvidia_config

#: Default idle devices kept per fingerprint; beyond this, released
#: devices are evicted (their baseline images would pin memory for
#: nothing).  The *effective* bound is :func:`max_idle_per_key` — the
#: serving layer raises it for device-heavy traffic mixes, and the
#: ``REPRO_POOL_MAX_IDLE`` environment variable seeds it at import.
MAX_IDLE_PER_KEY = 4

_idle: Dict[Tuple[str, str, str], List[GpuDevice]] = {}
_stats: Dict[str, int] = {}
_warm = True
_max_idle = int(os.environ.get("REPRO_POOL_MAX_IDLE", MAX_IDLE_PER_KEY))


def _zeroed_stats() -> Dict[str, int]:
    return {"hits": 0, "misses": 0, "cold_builds": 0,
            "releases": 0, "discards": 0, "resets": 0, "evictions": 0}


_stats.update(_zeroed_stats())


def max_idle_per_key() -> int:
    """The effective idle-pool bound per fingerprint."""
    return _max_idle


def set_max_idle_per_key(limit: int) -> int:
    """Rebound the idle pool; returns the previous limit.

    Shrinking evicts surplus idle devices immediately (oldest first),
    so the bound is an invariant, not just a release-time filter.  The
    limit is pool telemetry, never a workload observable: changing it
    can only turn warm hits into cold builds, which reset-equivalence
    makes bit-identical anyway.
    """
    global _max_idle
    if limit < 0:
        raise ValueError(f"max idle per key must be >= 0, got {limit}")
    previous = _max_idle
    _max_idle = limit
    for pool in _idle.values():
        while len(pool) > _max_idle:
            pool.pop(0)
            _stats["evictions"] += 1
    return previous


def device_fingerprint(config: Optional[GPUConfig],
                       shield: Optional[ShieldConfig]) -> Tuple[str, str, str]:
    """The reuse key: full config repr, shield repr, resolved engine.

    Both configs are flat dataclasses whose reprs enumerate every field,
    so two fingerprints are equal exactly when fresh devices built from
    them would be indistinguishable (given equal seeds).
    """
    cfg = config or nvidia_config()
    return (repr(cfg), repr(shield), resolve_engine(cfg.engine))


def warm_devices_enabled() -> bool:
    return _warm


def set_warm_devices(enabled: bool) -> bool:
    """Globally enable/disable reuse; returns the previous setting.

    Disabled, :func:`acquire_device` always cold-builds and
    :func:`release_device` always drops — the cold leg of
    ``bench --compare-warm``.
    """
    global _warm
    previous = _warm
    _warm = bool(enabled)
    return previous


@contextmanager
def warm_devices(enabled: bool = True):
    """Scoped :func:`set_warm_devices`."""
    previous = set_warm_devices(enabled)
    try:
        yield
    finally:
        set_warm_devices(previous)


def acquire_device(config: Optional[GPUConfig] = None,
                   shield: Optional[ShieldConfig] = None,
                   seed: int = 0xC0FFEE) -> GpuDevice:
    """A device for ``(config, shield)``, reset to ``seed``.

    Pops an idle device with the same fingerprint when warm reuse is
    on, else constructs one.  Either way the returned device is in the
    bit-identical fresh state for ``seed``.
    """
    cfg = config or nvidia_config()
    if not _warm:
        _stats["cold_builds"] += 1
        return GpuDevice(cfg, shield=shield, seed=seed)
    key = device_fingerprint(cfg, shield)
    pool = _idle.get(key)
    if pool:
        device = pool.pop()
        device.reset(seed)
        _stats["hits"] += 1
        _stats["resets"] += 1
        return device
    _stats["misses"] += 1
    device = GpuDevice(cfg, shield=shield, seed=seed)
    device._cache_key = key
    return device


def release_device(device: Optional[GpuDevice]) -> None:
    """Return a device to the idle pool (or drop it).

    Safe to call with ``None`` and idempotent per device object: a
    device already idling is not enqueued twice.
    """
    if device is None:
        return
    device.close()
    # Pool hygiene: a harness-attached tracer must not ride along into
    # the idle pool, or the next acquirer's accesses would leak into the
    # releaser's (still-live) trace until the acquire-time reset.
    device.gpu.detach_tracer()
    # Same contract for undrained violation records: a releaser that
    # never ``finish``-ed a faulting launch (crash path, abandoned run)
    # must not hand its violations to the pool, where an auditor reading
    # the device — or a reset regression — would attribute them to the
    # *next* tenant.  Scrubbed at release, not just at acquire-reset.
    device.shield.log.records.clear()
    # And for race-detector shadow state: race records name both racing
    # threads' access sites, so a detector riding into the pool would
    # leak one tenant's access pattern to the next acquirer.
    device.gpu.detach_race_detector()
    # And for profilers: an attached profiler would keep attributing the
    # next tenant's accesses (and keep the fast engine delegating to the
    # reference pipeline — a silent slowdown on top of the leak).
    device.gpu.detach_profiler()
    key = device._cache_key
    if key is None or not _warm:
        _stats["discards"] += 1
        return
    pool = _idle.setdefault(key, [])
    if device in pool:
        _stats["discards"] += 1
        return
    if len(pool) >= _max_idle:
        _stats["evictions"] += 1
        return
    pool.append(device)
    _stats["releases"] += 1


def reset_device_cache() -> None:
    """Drop every idle device, the warm memos, and all counters.

    One call returns the whole warm layer to a cold, just-imported
    state — what each leg of ``bench --compare-warm`` starts from.
    """
    from repro.device.memo import clear_warm_memo
    _idle.clear()
    _stats.clear()
    _stats.update(_zeroed_stats())
    clear_warm_memo()


def device_cache_stats() -> Dict[str, int]:
    """A copy of the counters plus the current idle population."""
    out = dict(_stats)
    out["idle"] = sum(len(pool) for pool in _idle.values())
    out["keys"] = len(_idle)
    out["max_idle_per_key"] = _max_idle
    return out
