"""The per-process warm device cache.

Harnesses that used to build a fresh :class:`~repro.device.device.GpuDevice`
per run instead :func:`acquire_device` / :func:`release_device` around
it.  Released devices idle in a pool keyed by a **configuration
fingerprint** — ``(GPUConfig, ShieldConfig, resolved engine)`` — and a
later acquisition with the same fingerprint pops one and :meth:`resets
<repro.device.device.GpuDevice.reset>` it under the caller's seed
instead of reconstructing the whole stack.  Reset is bit-identical to
fresh construction, so the warm path changes wall-clock only.

The seed is deliberately *not* part of the key: campaigns vary the seed
per case, and reset re-seeds for free.  The resolved engine *is* part
of the key: the engine-differential drivers flip the process default
mid-run, and a device built under one engine must never serve the
other.

The cache is per process.  Runner workers fork per attempt, so each
child starts cold and warms up across the cases of its own shard; the
inline (``--jobs 0``) path shares one pool across every job.  The
counters here are merged into the runner's stats registry by
``repro.runner.pool``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.core.shield import ShieldConfig
from repro.device.device import GpuDevice
from repro.engine import resolve as resolve_engine
from repro.gpu.config import GPUConfig, nvidia_config

#: Idle devices kept per fingerprint; beyond this, released devices are
#: simply dropped (their baseline images would pin memory for nothing).
MAX_IDLE_PER_KEY = 4

_idle: Dict[Tuple[str, str, str], List[GpuDevice]] = {}
_stats: Dict[str, int] = {}
_warm = True


def _zeroed_stats() -> Dict[str, int]:
    return {"hits": 0, "misses": 0, "cold_builds": 0,
            "releases": 0, "discards": 0, "resets": 0}


_stats.update(_zeroed_stats())


def device_fingerprint(config: Optional[GPUConfig],
                       shield: Optional[ShieldConfig]) -> Tuple[str, str, str]:
    """The reuse key: full config repr, shield repr, resolved engine.

    Both configs are flat dataclasses whose reprs enumerate every field,
    so two fingerprints are equal exactly when fresh devices built from
    them would be indistinguishable (given equal seeds).
    """
    cfg = config or nvidia_config()
    return (repr(cfg), repr(shield), resolve_engine(cfg.engine))


def warm_devices_enabled() -> bool:
    return _warm


def set_warm_devices(enabled: bool) -> bool:
    """Globally enable/disable reuse; returns the previous setting.

    Disabled, :func:`acquire_device` always cold-builds and
    :func:`release_device` always drops — the cold leg of
    ``bench --compare-warm``.
    """
    global _warm
    previous = _warm
    _warm = bool(enabled)
    return previous


@contextmanager
def warm_devices(enabled: bool = True):
    """Scoped :func:`set_warm_devices`."""
    previous = set_warm_devices(enabled)
    try:
        yield
    finally:
        set_warm_devices(previous)


def acquire_device(config: Optional[GPUConfig] = None,
                   shield: Optional[ShieldConfig] = None,
                   seed: int = 0xC0FFEE) -> GpuDevice:
    """A device for ``(config, shield)``, reset to ``seed``.

    Pops an idle device with the same fingerprint when warm reuse is
    on, else constructs one.  Either way the returned device is in the
    bit-identical fresh state for ``seed``.
    """
    cfg = config or nvidia_config()
    if not _warm:
        _stats["cold_builds"] += 1
        return GpuDevice(cfg, shield=shield, seed=seed)
    key = device_fingerprint(cfg, shield)
    pool = _idle.get(key)
    if pool:
        device = pool.pop()
        device.reset(seed)
        _stats["hits"] += 1
        _stats["resets"] += 1
        return device
    _stats["misses"] += 1
    device = GpuDevice(cfg, shield=shield, seed=seed)
    device._cache_key = key
    return device


def release_device(device: Optional[GpuDevice]) -> None:
    """Return a device to the idle pool (or drop it).

    Safe to call with ``None`` and idempotent per device object: a
    device already idling is not enqueued twice.
    """
    if device is None:
        return
    device.close()
    # Pool hygiene: a harness-attached tracer must not ride along into
    # the idle pool, or the next acquirer's accesses would leak into the
    # releaser's (still-live) trace until the acquire-time reset.
    device.gpu.detach_tracer()
    key = device._cache_key
    if key is None or not _warm:
        _stats["discards"] += 1
        return
    pool = _idle.setdefault(key, [])
    if device in pool or len(pool) >= MAX_IDLE_PER_KEY:
        _stats["discards"] += 1
        return
    pool.append(device)
    _stats["releases"] += 1


def reset_device_cache() -> None:
    """Drop every idle device, the warm memos, and all counters.

    One call returns the whole warm layer to a cold, just-imported
    state — what each leg of ``bench --compare-warm`` starts from.
    """
    from repro.device.memo import clear_warm_memo
    _idle.clear()
    _stats.clear()
    _stats.update(_zeroed_stats())
    clear_warm_memo()


def device_cache_stats() -> Dict[str, int]:
    """A copy of the counters plus the current idle population."""
    out = dict(_stats)
    out["idle"] = sum(len(pool) for pool in _idle.values())
    out["keys"] = len(_idle)
    return out
