"""Workloads: parametric kernel templates + the benchmark registries.

The paper evaluates 88 CUDA and 17 OpenCL benchmarks.  We reproduce the
*axes that drive the results* — buffer count, affine vs indirect
addressing, memory intensity, kernel-launch counts, shared-memory use —
with parametric templates (:mod:`repro.workloads.templates`) instantiated
under the paper's benchmark names (:mod:`repro.workloads.suite`).
"""

from repro.workloads.templates import BufferSpec, KernelRun, Workload
from repro.workloads.suite import (
    CUDA_BENCHMARKS,
    OPENCL_BENCHMARKS,
    RCACHE_SENSITIVE,
    RODINIA_FIG19,
    get_benchmark,
)

__all__ = [
    "BufferSpec",
    "KernelRun",
    "Workload",
    "CUDA_BENCHMARKS",
    "OPENCL_BENCHMARKS",
    "RCACHE_SENSITIVE",
    "RODINIA_FIG19",
    "get_benchmark",
]
