"""Benchmark registry: the paper's benchmark names -> template instances.

The evaluation uses 88 CUDA benchmarks (Rodinia, Parboil, GraphBig,
CUDA-SDK; Table 6 groups them into seven domains) and 17 OpenCL
benchmarks for the Intel architecture.  Each entry here picks a template
and parameters that match the benchmark's relevant behaviour: buffer
count, affine vs indirect addressing, launch count, memory intensity.

Instance sizes are scaled for simulator throughput via the
``REPRO_SCALE`` environment variable (default 1.0); declared buffer
sizes (``decl_mb``) are kept realistic for the Figure 11 page-count
characterisation even when only a prefix is touched.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.workloads import templates as T
from repro.workloads.templates import Workload


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


@dataclass(frozen=True)
class BenchmarkDef:
    """One registered benchmark."""

    name: str
    category: str          # ML/LA/GT/GI/PS/IM/DM (Table 6) or OCL
    source: str            # rodinia/parboil/graphbig/cuda-sdk/opencl
    factory: Callable[[float], Workload]
    rcache_sensitive: bool = False
    decl_mb: float = 0.5   # declared per-buffer footprint (Figure 11)

    def build(self, scale: Optional[float] = None) -> Workload:
        """Build the workload; ``scale`` overrides REPRO_SCALE."""
        workload = self.factory(_scale() if scale is None else scale)
        workload.category = self.category
        workload.suite = self.source
        # Inflate declared footprints to the benchmark's realistic
        # per-buffer size (Figure 11).  Only a prefix is initialised and
        # touched, so this changes allocation metadata, not simulation
        # cost (the backing store is sparse).
        floor = int(self.decl_mb * (1 << 20))
        workload.buffers = [
            spec if spec.nbytes >= floor else
            type(spec)(name=spec.name, nbytes=floor, init=spec.init,
                       read_only=spec.read_only, region=spec.region)
            for spec in workload.buffers
        ]
        return workload


def _n(base: int, scale: float, wg: int) -> int:
    """Scaled thread count, kept a multiple of the workgroup size."""
    n = max(int(base * scale), wg)
    return -(-n // wg) * wg


# Template shorthands.  CUDA workgroup size 64 (two 32-wide warps);
# OpenCL workgroup size 32 (four SIMD8 sub-workgroups).
_WG = 64
_WGI = 32


def _stream(base_n, inputs=2, flops=4, mb=0.0, work=1, repeats=1, wg=_WG):
    return lambda s: T.streaming(
        "", n=_n(base_n, s, wg), wg_size=wg, inputs=inputs, flops=flops,
        elem_mb=mb, work=work, repeats=repeats)


def _stencil(base_n, radius=1, mb=0.0, work=1, repeats=1, wg=_WG,
             src_space="global"):
    return lambda s: T.stencil1d("", n=_n(base_n, s, wg), wg_size=wg,
                                 radius=radius, elem_mb=mb, work=work,
                                 repeats=repeats, src_space=src_space)


def _gather(base_n, levels=1, extra=0, repeats=1, wg=_WG):
    return lambda s: T.gather("", n=_n(base_n, s, wg), wg_size=wg,
                              data_len=_n(base_n, s, wg), levels=levels,
                              extra_buffers=extra, repeats=repeats)


def _scatter(base_n, repeats=1, wg=_WG):
    return lambda s: T.scatter("", n=_n(base_n, s, wg), wg_size=wg,
                               out_len=_n(base_n, s, wg), repeats=repeats)


def _spmv(base_rows, degree=4, extra=0, repeats=1, wg=_WG):
    return lambda s: T.spmv_csr("", rows=_n(base_rows, s, wg), degree=degree,
                                wg_size=wg, affine_frac_buffers=extra,
                                repeats=repeats)


def _bfs(base_nodes, degree=2, iterations=2, extra=0, wg=_WG):
    def make(s):
        spmv = T.spmv_csr("", rows=_n(base_nodes, s, wg), degree=degree,
                          wg_size=wg, affine_frac_buffers=extra)
        run = spmv.runs[0]
        return T.Workload(name="", buffers=spmv.buffers,
                          runs=[run] * iterations)
    return make


def _mm(dim, tile=16, wg=_WG):
    return lambda s: T.matmul_tiled("", dim=_n(dim, s, wg), tile=tile,
                                    wg_size=wg)


def _reduce(base_n, wg=_WG):
    return lambda s: T.reduction("", n=_n(base_n, s, wg), wg_size=wg)


def _multi(base_n, nbuffers, rounds=2, wg=_WG):
    return lambda s: T.multi_buffer_stream("", n=_n(base_n, s, wg),
                                           wg_size=wg, nbuffers=nbuffers,
                                           rounds=rounds)


def _kmeans(points, features=4, wg=_WG):
    return lambda s: T.kmeans_swap("", npoints=_n(points, s, wg),
                                   nfeatures=features, wg_size=wg)


def _bitonic(base_n, stages=3, wg=_WG):
    return lambda s: T.bitonic_step("", n=_n(base_n, s, wg), wg_size=wg,
                                    stages=stages)


def _local(base_n, words=8, wg=_WG):
    return lambda s: T.local_array("", n=_n(base_n, s, wg), wg_size=wg,
                                   words=words)


def _compute(base_n, iters=16, nbuffers=2, wg=_WG):
    return lambda s: T.compute_heavy("", n=_n(base_n, s, wg), wg_size=wg,
                                     iters=iters, nbuffers=nbuffers)


def _launches(base_n, launches, nbuffers=4, wg=_WG):
    return lambda s: T.many_launches(
        "", n=_n(base_n, s, wg), wg_size=wg,
        launches=max(4, int(launches * s)), nbuffers=nbuffers)


def _sc_mix(base_n, launches, wg=_WG):
    """streamcluster: memory-bound, ~half indirect, many launches."""
    def make(s):
        n = _n(base_n, s, wg)
        w = T.gather("", n=n, wg_size=wg, data_len=n, levels=2,
                     extra_buffers=3)
        w.repeats = max(4, int(launches * s))
        return w
    return make


# ---------------------------------------------------------------------------
# CUDA registry (Nvidia architecture; Table 6 domains) — 88 entries
# ---------------------------------------------------------------------------

_S = True   # marks the 17 RCache-sensitive benchmarks of Figure 15

_CUDA_SPECS = [
    # --- Machine learning (ML) ---
    ("mm",            "ML", "cuda-sdk",  _mm(256),                   False, 0.25),
    ("ConvSep",       "ML", "cuda-sdk",  _multi(2048, 5, rounds=2),  _S,   1.0),
    ("kmeans",        "ML", "rodinia",   _kmeans(8192, 8),           False, 5.0),
    ("backprop",      "ML", "rodinia",   _stream(2048, inputs=3),    False, 2.5),
    # --- Linear algebra (LA) ---
    ("sad",           "LA", "parboil",   _stencil(2048, radius=2),   False, 1.5),
    ("spmv",          "LA", "parboil",   _spmv(1024, degree=4),      False, 2.0),
    ("stencil",       "LA", "parboil",   _stencil(2048, radius=1),   False, 3.0),
    ("ScalarProd",    "LA", "cuda-sdk",  _multi(2048, 6, rounds=2),  _S,   0.5),
    ("vectoradd",     "LA", "cuda-sdk",  _stream(2048, inputs=2),    False, 0.5),
    ("dct",           "LA", "cuda-sdk",  _stencil(2048, radius=3),   False, 0.25),
    ("Reduction",     "LA", "cuda-sdk",  _reduce(4096),              _S,   1.0),
    # --- Graph traversal (GT) ---
    ("bc",            "GT", "graphbig",  _spmv(1024, degree=3, extra=2), _S, 2.0),
    ("bfs-dtc",       "GT", "graphbig",  _bfs(1024, degree=2, extra=4), _S, 2.0),
    ("gc-dtc",        "GT", "graphbig",  _spmv(768, degree=3),       _S,   2.0),
    ("sssp-dwc",      "GT", "graphbig",  _spmv(768, degree=4),       _S,   2.0),
    ("lavaMD",        "GT", "rodinia",   _local(8192, words=16),     False, 3.0),
    ("gaussian",      "GT", "rodinia",   _stream(6144, inputs=2, flops=12, work=12), False, 1.0),
    ("nn",            "GT", "rodinia",   _stream(2048, inputs=1, flops=8), False, 5.5),
    # --- Graph iterative (GI) ---
    ("pagerank",      "GI", "graphbig",  _spmv(768, degree=3, extra=1), False, 2.0),
    ("kcore",         "GI", "graphbig",  _spmv(640, degree=3),       False, 2.0),
    ("trianglecount", "GI", "graphbig",  _gather(1024, levels=2),    False, 2.0),
    # --- Physics & modelling (PS) ---
    ("cutcp",         "PS", "parboil",   _compute(1536, iters=12),   False, 1.0),
    ("tpacf",         "PS", "parboil",   _compute(1024, iters=16, nbuffers=3), False, 1.0),
    ("blackscholes",  "PS", "cuda-sdk",  _compute(2048, iters=10, nbuffers=3), False, 1.5),
    ("mersennetwister", "PS", "cuda-sdk", _compute(2048, iters=8),   False, 0.5),
    ("sorting",       "PS", "cuda-sdk",  _bitonic(2048, stages=3),   False, 1.0),
    ("MergeSort",     "PS", "cuda-sdk",  _bitonic(2048, stages=4),   _S,   1.0),
    # --- Image & media (IM) ---
    ("mri-q",         "IM", "parboil",   _compute(1536, iters=12, nbuffers=4), False, 1.0),
    ("SobolQRNG",     "IM", "cuda-sdk",  _multi(2048, 3, rounds=2),  _S,   0.5),
    ("Dct8x8",        "IM", "cuda-sdk",  _stencil(2048, radius=3),   False, 0.25),
    ("DwtHaar",       "IM", "cuda-sdk",  _stencil(2048, radius=1),   False, 0.5),
    ("hotspot",       "IM", "rodinia",   _stencil(6144, radius=2, mb=1.0, work=12), False, 1.0),
    ("lud",           "IM", "rodinia",   _mm(192),                   False, 0.5),
    ("lud-64",        "IM", "rodinia",   _mm(128, tile=8),           _S,   0.1),
    ("lud-256",       "IM", "rodinia",   _mm(256, tile=16),          _S,   0.5),
    ("LineOfSight",   "IM", "cuda-sdk",  _multi(2048, 4, rounds=3),  _S,   0.5),
    ("Dxtc",          "IM", "cuda-sdk",  _multi(2048, 5, rounds=2),  _S,   0.5),
    ("Histogram",     "IM", "cuda-sdk",  _scatter(2048),             _S,   0.5),
    ("HSOpticalFlow", "IM", "cuda-sdk",  _stream(2048, inputs=4),    False, 2.0),
    ("nn-256k-1",     "IM", "cuda-sdk",  _multi(3072, 3, rounds=3),  _S,   4.0),
    # --- Data mining (DM) ---
    ("streamcluster", "DM", "rodinia",   _sc_mix(2048, launches=32), _S,   1.5),
    ("nw",            "DM", "rodinia",   _gather(1536, levels=2),    _S,   1.0),
    # --- Remaining Rodinia (Figures 11/19 need the full suite) ---
    ("b+tree",        "GT", "rodinia",   _gather(1024, levels=2, extra=1), False, 10.0),
    ("bfs",           "GT", "rodinia",   _bfs(3072, degree=2, extra=4), False, 4.5),
    ("cfd",           "PS", "rodinia",   _stream(1536, inputs=4, flops=8, repeats=2), False, 6.0),
    ("dwt2d",         "IM", "rodinia",   _stencil(2048, radius=2),   False, 2.0),
    ("heartwall",     "IM", "rodinia",   _multi(4096, 6, rounds=10), False, 8.0),
    ("hotspot3D",     "PS", "rodinia",   _stencil(2048, radius=3),   False, 3.0),
    ("hybridsort",    "PS", "rodinia",   _bitonic(2048, stages=4),   False, 40.0),
    ("myocyte",       "PS", "rodinia",   _compute(512, iters=24, nbuffers=4), False, 0.5),
    ("particlefilter", "PS", "rodinia",  _gather(6144, levels=2, extra=2), False, 2.0),
    ("pathfinder",    "GT", "rodinia",   _stencil(2048, radius=1),   False, 6.0),
    ("srad",          "IM", "rodinia",   _stencil(2048, radius=2, mb=2.0), False, 2.0),
    ("mummergpu",     "GT", "rodinia",   _gather(1024, levels=3),    False, 14.0),
    # --- Remaining Parboil ---
    ("histo",         "IM", "parboil",   _scatter(2048),             False, 1.0),
    ("lbm",           "PS", "parboil",   _stream(1536, inputs=5, flops=10), False, 8.0),
    ("mri-gridding",  "IM", "parboil",   _scatter(1536),             False, 2.0),
    ("sgemm",         "LA", "parboil",   _mm(192),                   False, 1.0),
    ("bfs-parboil",   "GT", "parboil",   _bfs(1024, degree=2),       False, 2.0),
    # --- Remaining GraphBig ---
    ("bfs-topo",      "GT", "graphbig",  _bfs(768, degree=2),        False, 2.0),
    ("dfs",           "GT", "graphbig",  _gather(768, levels=3),     False, 2.0),
    ("degree-centr",  "GI", "graphbig",  _spmv(768, degree=2),       False, 2.0),
    ("connected-comp", "GI", "graphbig", _spmv(768, degree=3),       False, 2.0),
    ("shortest-path", "GT", "graphbig",  _spmv(768, degree=4),       False, 2.0),
    ("graph-coloring", "GI", "graphbig", _spmv(768, degree=3),       False, 2.0),
    # --- Remaining CUDA-SDK ---
    ("matrixMul",     "LA", "cuda-sdk",  _mm(192),                   False, 0.25),
    ("transpose",     "LA", "cuda-sdk",  _stream(2048, inputs=1),    False, 1.0),
    ("scan",          "LA", "cuda-sdk",  _reduce(4096),              False, 1.0),
    ("fastWalsh",     "LA", "cuda-sdk",  _bitonic(2048, stages=3),   False, 1.0),
    ("binomialOptions", "PS", "cuda-sdk", _compute(1536, iters=16),  False, 0.5),
    ("MonteCarloCUDA", "PS", "cuda-sdk", _compute(2048, iters=12, nbuffers=3), False, 1.0),
    ("quasirandom",   "PS", "cuda-sdk",  _compute(2048, iters=8),    False, 0.5),
    ("eigenvalues",   "LA", "cuda-sdk",  _compute(1024, iters=20, nbuffers=3), False, 0.5),
    ("radixSort",     "PS", "cuda-sdk",  _scatter(2048),             False, 1.0),
    ("sortingNetworks", "PS", "cuda-sdk", _bitonic(2048, stages=4),  False, 1.0),
    ("convolutionTexture", "IM", "cuda-sdk", _stencil(2048, radius=2, src_space="texture"), False, 0.5),
    ("FDTD3d",        "PS", "cuda-sdk",  _stencil(2048, radius=3),   False, 4.0),
    ("dxtc-hq",       "IM", "cuda-sdk",  _multi(1536, 5, rounds=2),  False, 0.5),
    ("interval",      "PS", "cuda-sdk",  _compute(1024, iters=16),   False, 0.25),
    ("BlackScholesSDK", "PS", "cuda-sdk", _compute(2048, iters=10, nbuffers=3), False, 1.5),
    ("dwtHaar1D",     "IM", "cuda-sdk",  _stencil(2048, radius=1),   False, 0.25),
    ("histogram256",  "IM", "cuda-sdk",  _scatter(2048),             False, 0.5),
    ("reduction-sdk", "LA", "cuda-sdk",  _reduce(4096),              False, 1.0),
    ("scalarProd-sdk", "LA", "cuda-sdk", _multi(2048, 6, rounds=2),  False, 0.5),
    ("vectorAddDrv",  "LA", "cuda-sdk",  _stream(2048, inputs=2),    False, 0.5),
    ("clock",         "PS", "cuda-sdk",  _compute(512, iters=8),     False, 0.1),
    ("simpleTexture", "IM", "cuda-sdk",  _stencil(2048, radius=1, src_space="texture"), False, 0.5),
    ("convolutionFFT", "IM", "cuda-sdk", _stencil(2048, radius=4),   False, 1.0),
]

# ---------------------------------------------------------------------------
# OpenCL registry (Intel architecture; Figure 16's 17 benchmarks)
# ---------------------------------------------------------------------------

_OPENCL_SPECS = [
    ("backprop",      _stream(1024, inputs=3, wg=_WGI)),
    ("bfs",           _bfs(512, degree=2, wg=_WGI)),
    ("BitonicSort",   _bitonic(1024, stages=3, wg=_WGI)),
    ("GEMM",          _mm(128, tile=8, wg=_WGI)),
    ("image",         _stencil(1024, radius=2, wg=_WGI)),
    ("lavaMD",        _local(512, words=8, wg=_WGI)),
    ("MedianFilter",  _stencil(1024, radius=2, wg=_WGI)),
    ("MonteCarlo",    _compute(1024, iters=12, wg=_WGI)),
    ("pathfinder",    _stencil(1024, radius=1, wg=_WGI)),
    ("svm",           _stream(1024, inputs=3, flops=8, wg=_WGI)),
    ("cfd",           _stream(768, inputs=4, flops=8, wg=_WGI)),
    ("hotspot",       _stencil(1024, radius=1, wg=_WGI)),
    ("hotspot3D",     _stencil(1024, radius=3, wg=_WGI)),
    ("hybridsort",    _bitonic(1024, stages=4, wg=_WGI)),
    ("kmeans",        _kmeans(1024, 4, wg=_WGI)),
    ("nn",            _multi(1024, 3, rounds=3, wg=_WGI)),
    ("streamcluster", _sc_mix(1024, launches=10, wg=_WGI)),
]


def _finalize(specs, opencl=False) -> Dict[str, BenchmarkDef]:
    registry: Dict[str, BenchmarkDef] = {}
    for spec in specs:
        if opencl:
            name, factory = spec
            category, source, sensitive, decl = "OCL", "opencl", False, 1.0
        else:
            name, category, source, factory, sensitive, decl = spec

        def named_factory(scale, _f=factory, _name=name):
            workload = _f(scale)
            workload.name = _name
            for run in workload.runs:
                run.kernel.name = f"{_name}:{run.kernel.name or 'kernel'}"
            return workload

        registry[name] = BenchmarkDef(
            name=name, category=category, source=source,
            factory=named_factory, rcache_sensitive=sensitive,
            decl_mb=decl)
    return registry


CUDA_BENCHMARKS: Dict[str, BenchmarkDef] = _finalize(_CUDA_SPECS)
OPENCL_BENCHMARKS: Dict[str, BenchmarkDef] = _finalize(_OPENCL_SPECS,
                                                       opencl=True)

#: Figure 15's RCache-sensitive set (Nvidia).
RCACHE_SENSITIVE: List[str] = [
    name for name, b in CUDA_BENCHMARKS.items() if b.rcache_sensitive]

#: Figure 19's Rodinia subset.
RODINIA_FIG19: List[str] = [
    "bfs", "gaussian", "heartwall", "hotspot", "kmeans", "lavaMD",
    "lud", "particlefilter", "streamcluster",
]

#: Figure 18's seven OpenCL benchmarks, paired in all 21 combinations.
MULTIKERNEL_SET: List[str] = [
    "bfs", "cfd", "hotspot3D", "hybridsort", "kmeans", "nn",
    "streamcluster",
]


def get_benchmark(name: str, opencl: bool = False) -> BenchmarkDef:
    """Look up a benchmark by paper name."""
    registry = OPENCL_BENCHMARKS if opencl else CUDA_BENCHMARKS
    try:
        return registry[name]
    except KeyError:
        raise KeyError(f"unknown {'OpenCL' if opencl else 'CUDA'} "
                       f"benchmark {name!r}") from None
