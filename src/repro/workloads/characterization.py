"""Figure 1's benchmark characterisation dataset.

The paper surveys 145 GPU benchmarks across 13 suites and reports the
distribution of per-kernel buffer counts: average 6.5, maximum 34,
55.9% of benchmarks use fewer than five buffers, and only five use 20 or
more.  We cannot redistribute the original suites, so this module
synthesises a deterministic dataset with exactly those aggregate
statistics and exposes the same per-suite bucketing the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: The 13 suites of Figure 1 with their benchmark counts (sums to 145).
SUITE_SIZES: Dict[str, int] = {
    "Chai": 9,
    "CloverLeaf": 3,
    "FinanceBench": 6,
    "Hetero-Mark": 12,
    "OpenDwarf": 16,
    "Parboil": 11,
    "PolyBench/ACC": 19,
    "SHOC": 21,
    "SNAP": 2,
    "TeaLeaf": 2,
    "XsBench": 3,
    "pannotia": 8,
    "rodinia": 33,
}

BUCKETS: Tuple[Tuple[str, int, int], ...] = (
    ("<5", 0, 5),
    ("<10", 5, 10),
    ("<20", 10, 20),
    (">=20", 20, 10 ** 9),
)


def _buffer_count_multiset() -> List[int]:
    """145 buffer counts with the paper's aggregate statistics.

    81 benchmarks below five buffers (55.9%), 45 in [5, 10), 14 in
    [10, 20), and the five heavyweights topping out at 34; the grand sum
    of 943 gives the 6.5 average.
    """
    counts: List[int] = []
    counts += [2] * 27 + [3] * 27 + [4] * 27          # 81 small, sum 243
    counts += [9] * 29 + [8] * 16                     # 45 medium, sum 389
    counts += [13] * 14                               # 14 large, sum 182
    counts += [20, 22, 25, 28, 34]                    # 5 huge, sum 129
    return counts


def dataset() -> Dict[str, List[int]]:
    """suite -> list of per-benchmark buffer counts (deterministic)."""
    counts = _buffer_count_multiset()
    # Deal the multiset with a fixed shuffle so every suite gets a
    # realistic mix while global statistics stay exact.
    import random
    order = list(counts)
    random.Random(0xF16).shuffle(order)
    out: Dict[str, List[int]] = {}
    cursor = 0
    for suite, size in SUITE_SIZES.items():
        out[suite] = order[cursor:cursor + size]
        cursor += size
    return out


@dataclass(frozen=True)
class SuiteDistribution:
    """One suite's bucket counts (a bar of Figure 1)."""

    suite: str
    buckets: Dict[str, int]
    total: int


def figure1_rows() -> List[SuiteDistribution]:
    """Per-suite bucket distribution, the bars of Figure 1."""
    rows = []
    for suite, counts in dataset().items():
        buckets = {label: 0 for label, _, _ in BUCKETS}
        for c in counts:
            for label, lo, hi in BUCKETS:
                if lo <= c < hi:
                    buckets[label] += 1
                    break
        rows.append(SuiteDistribution(suite=suite, buckets=buckets,
                                      total=len(counts)))
    return rows


def summary() -> Dict[str, float]:
    """The aggregate statistics quoted in the paper's caption and §2.1."""
    counts = [c for lst in dataset().values() for c in lst]
    return {
        "benchmarks": len(counts),
        "average": sum(counts) / len(counts),
        "maximum": max(counts),
        "under5_percent": 100.0 * sum(1 for c in counts if c < 5) / len(counts),
        "over20": sum(1 for c in counts if c >= 20),
    }
