"""Parametric kernel templates.

Each template builds a :class:`Workload`: buffers, one or more kernel
launches, and metadata.  Templates span the behaviour axes the paper's
figures depend on:

* **affine** access (streaming, stencil, tiled matmul, kmeans-swap) —
  statically provable, so GPUShield's compiler filters their checks;
* **indirect** access (gather, scatter, SpMV, BFS, histogram) — the graph
  workloads whose checks must stay at runtime (Figure 17's tail);
* **buffer-count** pressure (multi-buffer streaming) — drives L1 RCache
  hit rates (Figures 15/16);
* **shared-memory + barrier** phases (reduction, matmul) and **local
  memory** arrays (lavaMD-style) — the other protected regions;
* **launch-count** pressure (streamcluster-style outer repeats) — what
  makes per-launch tools (GMOD/clArmor) expensive in Figure 19.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.isa.builder import KernelBuilder
from repro.isa.program import Kernel

# ('buf', name) | ('sizeof', name) | ('scalar', v)
# | ('delta', (src, dst, extra))   -> dst.va - src.va + extra  (resolved
#   against the runner's actual allocations — cross-buffer strides)
# | ('heap_off', extra)            -> heap.limit + extra
ArgSpec = Union[Tuple[str, str], Tuple[str, int],
                Tuple[str, Tuple[str, str, int]]]


@dataclass(frozen=True)
class BufferSpec:
    """One device buffer a workload needs.

    ``init`` selects host-side initialisation:

    * ``zero`` — all zeroes;
    * ``iota`` — int32 0,1,2,...;
    * ``randf`` — deterministic pseudo-random f32 in [0, 1);
    * ``index:<target>:<limit>`` — int32 indices uniform in [0, limit)
      (valid element indices into buffer ``target``);
    * ``csr_rows:<degree>`` — monotone row offsets with ~degree step.
    """

    name: str
    nbytes: int
    init: str = "zero"
    read_only: bool = False
    region: str = "global"   # global | constant | texture


@dataclass(frozen=True)
class KernelRun:
    """One kernel launch inside a workload iteration."""

    kernel: Kernel
    args: Dict[str, ArgSpec]
    workgroups: int
    wg_size: int


@dataclass
class Workload:
    """A runnable benchmark instance."""

    name: str
    buffers: List[BufferSpec]
    runs: List[KernelRun]
    repeats: int = 1            # outer kernel-invocation loop (streamcluster!)
    category: str = ""
    suite: str = ""
    notes: str = ""

    @property
    def num_buffers(self) -> int:
        return len(self.buffers)


def _buf(name: str) -> ArgSpec:
    return ("buf", name)


def _scalar(value: int) -> ArgSpec:
    return ("scalar", value)


def _delta(src: str, dst: str, extra: int = 0) -> ArgSpec:
    """Byte distance from ``src``'s base to ``dst``'s base plus ``extra``."""
    return ("delta", (src, dst, extra))


def _heap_off(extra: int) -> ArgSpec:
    """Byte offset relative to the device heap base: ``heap.limit + extra``
    escapes the heap region by ``extra`` bytes."""
    return ("heap_off", extra)


# ---------------------------------------------------------------------------
# Affine templates (statically provable)
# ---------------------------------------------------------------------------


def streaming(name: str, *, n: int, wg_size: int, inputs: int = 2,
              flops: int = 4, guard: bool = True, elem_mb: float = 0.0,
              work: int = 1, repeats: int = 1) -> Workload:
    """``out[i] = f(in0[i], in1[i], ...)`` — vector add and friends.

    ``elem_mb`` inflates the *declared* buffer size (for the Figure 11
    page-count characterisation) while only ``n`` elements are touched;
    ``work`` iterates the body per thread (time-stepped kernels).
    """
    declared = max(n * 4, int(elem_mb * (1 << 20)))
    b = KernelBuilder(name)
    ins = [b.arg_ptr(f"in{i}", read_only=True) for i in range(inputs)]
    out = b.arg_ptr("out")
    nn = b.arg_scalar("n")
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)

    def body():
        acc = b.ld_idx(ins[0], gtid, dtype="f32")
        for ptr in ins[1:]:
            acc = b.fadd(acc, b.ld_idx(ptr, gtid, dtype="f32"))
        for _ in range(flops):
            acc = b.fmad(acc, 1.0009765625, 0.5)
        b.st_idx(out, gtid, acc, dtype="f32")

    def iterated():
        if work > 1:
            with b.loop(work):
                body()
        else:
            body()

    if guard:
        with b.if_(pred):
            iterated()
    else:
        iterated()
    kernel = b.build()

    buffers = [BufferSpec(f"in{i}", declared, "randf", read_only=True)
               for i in range(inputs)]
    buffers.append(BufferSpec("out", declared, "zero"))
    args: Dict[str, ArgSpec] = {f"in{i}": _buf(f"in{i}") for i in range(inputs)}
    args["out"] = _buf("out")
    args["n"] = _scalar(n)
    return Workload(name=name, buffers=buffers, repeats=repeats,
                    runs=[KernelRun(kernel, args,
                                    workgroups=-(-n // wg_size),
                                    wg_size=wg_size)])


def stencil1d(name: str, *, n: int, wg_size: int, radius: int = 1,
              elem_mb: float = 0.0, work: int = 1, repeats: int = 1,
              src_space: str = "global") -> Workload:
    """1D stencil with clamped neighbours — min/max keep it provable.

    ``src_space="texture"`` reads the source through the texture path
    (read-only texture cache), like the SDK's convolutionTexture.
    """
    declared = max(n * 4, int(elem_mb * (1 << 20)))
    b = KernelBuilder(name)
    src = b.arg_ptr("src", read_only=True)
    dst = b.arg_ptr("dst")
    nn = b.arg_scalar("n")
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)
    last = b.sub(nn, 1)

    def body():
        acc = b.ld_idx(src, gtid, dtype="f32", space=src_space)
        for d in range(1, radius + 1):
            left = b.max_(b.sub(gtid, d), 0)
            right = b.min_(b.add(gtid, d), last)
            acc = b.fadd(acc, b.ld_idx(src, left, dtype="f32",
                                       space=src_space))
            acc = b.fadd(acc, b.ld_idx(src, right, dtype="f32",
                                       space=src_space))
        acc = b.fmul(acc, 1.0 / (2 * radius + 1))
        b.st_idx(dst, gtid, acc, dtype="f32")

    with b.if_(pred):
        if work > 1:
            with b.loop(work):
                body()
        else:
            body()
    kernel = b.build()
    return Workload(
        name=name,
        buffers=[BufferSpec("src", declared, "randf", read_only=True,
                            region=("texture" if src_space == "texture"
                                    else "global")),
                 BufferSpec("dst", declared, "zero")],
        repeats=repeats,
        runs=[KernelRun(kernel,
                        {"src": _buf("src"), "dst": _buf("dst"),
                         "n": _scalar(n)},
                        workgroups=-(-n // wg_size), wg_size=wg_size)])


def kmeans_swap(name: str, *, npoints: int, nfeatures: int, wg_size: int,
                repeats: int = 1) -> Workload:
    """Figure 13's feature-layout swap: a double affine loop over scalars."""
    b = KernelBuilder(name)
    feat = b.arg_ptr("feat", read_only=True)
    feat_swap = b.arg_ptr("feat_swap")
    np_ = b.arg_scalar("npoints")
    nf = b.arg_scalar("nfeatures")
    tid = b.gtid()
    pred = b.setp("lt", tid, np_)
    with b.if_(pred):
        with b.loop(nf) as i:
            src_idx = b.mad(tid, nf, i)          # feat[tid*nfeatures+i]
            dst_idx = b.mad(i, np_, tid)         # feat_swap[i*npoints+tid]
            value = b.ld_idx(feat, src_idx, dtype="f32")
            b.st_idx(feat_swap, dst_idx, value, dtype="f32")
    kernel = b.build()
    nbytes = npoints * nfeatures * 4
    return Workload(
        name=name,
        buffers=[BufferSpec("feat", nbytes, "randf", read_only=True),
                 BufferSpec("feat_swap", nbytes, "zero")],
        repeats=repeats,
        runs=[KernelRun(kernel,
                        {"feat": _buf("feat"), "feat_swap": _buf("feat_swap"),
                         "npoints": _scalar(npoints),
                         "nfeatures": _scalar(nfeatures)},
                        workgroups=-(-npoints // wg_size), wg_size=wg_size)])


def matmul_tiled(name: str, *, dim: int, tile: int, wg_size: int,
                 repeats: int = 1) -> Workload:
    """Tiled dense matmul with a shared-memory staging phase + barriers."""
    b = KernelBuilder(name)
    a = b.arg_ptr("A", read_only=True)
    bm = b.arg_ptr("B", read_only=True)
    c = b.arg_ptr("C")
    n = b.arg_scalar("dim")
    tiles = b.arg_scalar("tiles")
    b.shared_mem(2 * wg_size * 4)
    tid = b.tid()
    row = b.gtid()                      # one output row per thread
    pred = b.setp("lt", row, n)
    acc = b.mov(0.0)
    with b.loop(tiles) as t:
        # Stage one tile strip of B into shared memory.
        col = b.mad(t, tile, b.mod(tid, tile))
        bval = b.ld_idx(bm, b.min_(col, b.sub(n, 1)), dtype="f32", pred=pred)
        b.st_shared(b.mul(tid, 4), bval, dtype="f32")
        b.bar()
        with b.loop(tile) as k:
            aidx = b.mad(row, n, b.mad(t, tile, k))
            av = b.ld_idx(a, b.min_(aidx, b.sub(b.mul(n, n), 1)),
                          dtype="f32", pred=pred)
            sv = b.ld_shared(b.mul(b.mod(b.add(k, tid), wg_size), 4),
                             dtype="f32")
            b.fmad(av, sv, acc, out=acc)
        b.bar()
    b.st_idx(c, row, acc, dtype="f32", pred=pred)
    kernel = b.build()
    ntiles = -(-dim // tile)
    return Workload(
        name=name,
        buffers=[BufferSpec("A", dim * dim * 4, "randf", read_only=True),
                 BufferSpec("B", dim * 4, "randf", read_only=True),
                 BufferSpec("C", dim * 4, "zero")],
        repeats=repeats,
        runs=[KernelRun(kernel,
                        {"A": _buf("A"), "B": _buf("B"), "C": _buf("C"),
                         "dim": _scalar(dim), "tiles": _scalar(ntiles)},
                        workgroups=-(-dim // wg_size), wg_size=wg_size)])


def reduction(name: str, *, n: int, wg_size: int,
              repeats: int = 1) -> Workload:
    """Shared-memory tree reduction with barriers at every level."""
    b = KernelBuilder(name)
    src = b.arg_ptr("src", read_only=True)
    dst = b.arg_ptr("dst")
    nn = b.arg_scalar("n")
    tid = b.tid()
    gtid = b.gtid()
    b.shared_mem(wg_size * 4)
    pred = b.setp("lt", gtid, nn)
    value = b.ld_idx(src, gtid, dtype="f32", pred=pred)
    value = b.sel(pred, value, 0.0)
    b.st_shared(b.mul(tid, 4), value, dtype="f32")
    b.bar()
    stride = wg_size // 2
    while stride >= 1:
        p = b.setp("lt", tid, stride)
        with b.if_(p):
            other = b.ld_shared(b.mul(b.add(tid, stride), 4), dtype="f32")
            mine = b.ld_shared(b.mul(tid, 4), dtype="f32")
            b.st_shared(b.mul(tid, 4), b.fadd(mine, other), dtype="f32")
        b.bar()
        stride //= 2
    p0 = b.setp("eq", tid, 0)
    with b.if_(p0):
        total = b.ld_shared(0, dtype="f32")
        b.st_idx(dst, b.ctaid(), total, dtype="f32")
    kernel = b.build()
    wgs = -(-n // wg_size)
    return Workload(
        name=name,
        buffers=[BufferSpec("src", n * 4, "randf", read_only=True),
                 BufferSpec("dst", max(wgs, 1) * 4, "zero")],
        repeats=repeats,
        runs=[KernelRun(kernel,
                        {"src": _buf("src"), "dst": _buf("dst"),
                         "n": _scalar(n)},
                        workgroups=wgs, wg_size=wg_size)])


def multi_buffer_stream(name: str, *, n: int, wg_size: int, nbuffers: int,
                        rounds: int = 2, repeats: int = 1) -> Workload:
    """Round-robin over many buffers — L1 RCache pressure knob (Fig. 15)."""
    b = KernelBuilder(name)
    ptrs = [b.arg_ptr(f"b{i}") for i in range(nbuffers)]
    nn = b.arg_scalar("n")
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)
    with b.if_(pred):
        acc = b.mov(0.0)
        for _ in range(rounds):
            for ptr in ptrs:
                acc = b.fadd(acc, b.ld_idx(ptr, gtid, dtype="f32"))
        b.st_idx(ptrs[0], gtid, acc, dtype="f32")
    kernel = b.build()
    args: Dict[str, ArgSpec] = {f"b{i}": _buf(f"b{i}")
                                for i in range(nbuffers)}
    args["n"] = _scalar(n)
    return Workload(
        name=name,
        buffers=[BufferSpec(f"b{i}", n * 4, "randf")
                 for i in range(nbuffers)],
        repeats=repeats,
        runs=[KernelRun(kernel, args, workgroups=-(-n // wg_size),
                        wg_size=wg_size)])


# ---------------------------------------------------------------------------
# Indirect templates (defeat static analysis)
# ---------------------------------------------------------------------------


def gather(name: str, *, n: int, wg_size: int, data_len: int,
           levels: int = 1, repeats: int = 1,
           extra_buffers: int = 0) -> Workload:
    """``out[i] = data[idx[i]]`` (optionally chained) — graph-style."""
    b = KernelBuilder(name)
    idx = b.arg_ptr("idx", read_only=True)
    data = b.arg_ptr("data", read_only=True)
    out = b.arg_ptr("out")
    extras = [b.arg_ptr(f"aux{i}", read_only=True)
              for i in range(extra_buffers)]
    nn = b.arg_scalar("n")
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)
    with b.if_(pred):
        j = b.ld_idx(idx, gtid, dtype="i32")
        value = b.ld_idx(data, j, dtype="f32")
        for _level in range(levels - 1):
            j = b.ld_idx(idx, b.mod(b.add(j, 1), nn), dtype="i32")
            value = b.fadd(value, b.ld_idx(data, j, dtype="f32"))
        for i, aux in enumerate(extras):
            value = b.fadd(value, b.ld_idx(aux, gtid, dtype="f32"))
        b.st_idx(out, gtid, value, dtype="f32")
    kernel = b.build()
    buffers = [
        BufferSpec("idx", n * 4, f"index:data:{data_len}", read_only=True),
        BufferSpec("data", data_len * 4, "randf", read_only=True),
        BufferSpec("out", n * 4, "zero"),
    ]
    buffers.extend(BufferSpec(f"aux{i}", n * 4, "randf", read_only=True)
                   for i in range(extra_buffers))
    args: Dict[str, ArgSpec] = {"idx": _buf("idx"), "data": _buf("data"),
                                "out": _buf("out"), "n": _scalar(n)}
    args.update({f"aux{i}": _buf(f"aux{i}") for i in range(extra_buffers)})
    return Workload(name=name, buffers=buffers, repeats=repeats,
                    runs=[KernelRun(kernel, args,
                                    workgroups=-(-n // wg_size),
                                    wg_size=wg_size)])


def scatter(name: str, *, n: int, wg_size: int, out_len: int,
            repeats: int = 1) -> Workload:
    """``out[idx[i]] = data[i]`` — histogram-like indirect stores."""
    b = KernelBuilder(name)
    idx = b.arg_ptr("idx", read_only=True)
    data = b.arg_ptr("data", read_only=True)
    out = b.arg_ptr("out")
    nn = b.arg_scalar("n")
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)
    with b.if_(pred):
        j = b.ld_idx(idx, gtid, dtype="i32")
        value = b.ld_idx(data, gtid, dtype="f32")
        b.st_idx(out, j, value, dtype="f32")
    kernel = b.build()
    return Workload(
        name=name,
        buffers=[
            BufferSpec("idx", n * 4, f"index:out:{out_len}", read_only=True),
            BufferSpec("data", n * 4, "randf", read_only=True),
            BufferSpec("out", out_len * 4, "zero"),
        ],
        repeats=repeats,
        runs=[KernelRun(kernel,
                        {"idx": _buf("idx"), "data": _buf("data"),
                         "out": _buf("out"), "n": _scalar(n)},
                        workgroups=-(-n // wg_size), wg_size=wg_size)])


def spmv_csr(name: str, *, rows: int, degree: int, wg_size: int,
             affine_frac_buffers: int = 0, repeats: int = 1) -> Workload:
    """CSR sparse matrix-vector product: the canonical indirect loop.

    Row offsets load affinely; the inner loop's trip count and column
    indices come from memory — exactly the mix that gives graph kernels
    their partial static-filtering rates (Figure 17).
    """
    nnz = rows * degree
    b = KernelBuilder(name)
    offs = b.arg_ptr("row_offsets", read_only=True)
    cols = b.arg_ptr("col_idx", read_only=True)
    vals = b.arg_ptr("values", read_only=True)
    x = b.arg_ptr("x", read_only=True)
    y = b.arg_ptr("y")
    extras = [b.arg_ptr(f"meta{i}", read_only=True)
              for i in range(affine_frac_buffers)]
    nn = b.arg_scalar("rows")
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)
    with b.if_(pred):
        start = b.ld_idx(offs, gtid, dtype="i32")            # affine
        end = b.ld_idx(offs, b.add(gtid, 1), dtype="i32")    # affine
        count = b.sub(end, start)
        acc = b.mov(0.0)
        with b.loop(count) as k:                             # data-dependent
            e = b.add(start, k)
            col = b.ld_idx(cols, e, dtype="i32")             # indirect
            v = b.ld_idx(vals, e, dtype="f32")               # indirect
            xv = b.ld_idx(x, col, dtype="f32")               # indirect
            b.fmad(v, xv, acc, out=acc)
        for aux in extras:
            acc = b.fadd(acc, b.ld_idx(aux, gtid, dtype="f32"))  # affine
        b.st_idx(y, gtid, acc, dtype="f32")                  # affine
    kernel = b.build()
    buffers = [
        BufferSpec("row_offsets", (rows + 1) * 4, f"csr_rows:{degree}",
                   read_only=True),
        BufferSpec("col_idx", nnz * 4, f"index:x:{rows}", read_only=True),
        BufferSpec("values", nnz * 4, "randf", read_only=True),
        BufferSpec("x", rows * 4, "randf", read_only=True),
        BufferSpec("y", rows * 4, "zero"),
    ]
    buffers.extend(BufferSpec(f"meta{i}", rows * 4, "randf", read_only=True)
                   for i in range(affine_frac_buffers))
    args: Dict[str, ArgSpec] = {
        "row_offsets": _buf("row_offsets"), "col_idx": _buf("col_idx"),
        "values": _buf("values"), "x": _buf("x"), "y": _buf("y"),
        "rows": _scalar(rows),
    }
    args.update({f"meta{i}": _buf(f"meta{i}")
                 for i in range(affine_frac_buffers)})
    return Workload(name=name, buffers=buffers, repeats=repeats,
                    runs=[KernelRun(kernel, args,
                                    workgroups=-(-rows // wg_size),
                                    wg_size=wg_size)])


def bfs_like(name: str, *, nodes: int, degree: int, wg_size: int,
             iterations: int = 2, repeats: int = 1) -> Workload:
    """Frontier-relaxation step, launched ``iterations`` times per repeat."""
    spmv = spmv_csr(name, rows=nodes, degree=degree, wg_size=wg_size)
    run = spmv.runs[0]
    return Workload(name=name, buffers=spmv.buffers,
                    runs=[run] * iterations, repeats=repeats)


def bitonic_step(name: str, *, n: int, wg_size: int, stages: int = 3,
                 repeats: int = 1) -> Workload:
    """Bitonic compare-exchange: XOR-partner indexing is statically opaque."""
    b = KernelBuilder(name)
    data = b.arg_ptr("data")
    nn = b.arg_scalar("n")
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)
    with b.if_(pred):
        for s in range(stages):
            stride = 1 << s
            partner = b.xor(gtid, stride)     # xor -> Unknown interval
            inb = b.setp("lt", partner, nn)
            with b.if_(inb):
                mine = b.ld_idx(data, gtid, dtype="f32")
                theirs = b.ld_idx(data, partner, dtype="f32")
                lo = b.fmin(mine, theirs)
                hi = b.fmax(mine, theirs)
                up = b.setp("lt", gtid, partner)
                b.st_idx(data, gtid, b.sel(up, lo, hi), dtype="f32")
    kernel = b.build()
    return Workload(
        name=name,
        buffers=[BufferSpec("data", n * 4, "randf")],
        repeats=repeats,
        runs=[KernelRun(kernel, {"data": _buf("data"), "n": _scalar(n)},
                        workgroups=-(-n // wg_size), wg_size=wg_size)])


# ---------------------------------------------------------------------------
# Local memory / compute-heavy templates
# ---------------------------------------------------------------------------


def local_array(name: str, *, n: int, wg_size: int, words: int = 8,
                repeats: int = 1) -> Workload:
    """lavaMD-style: a per-thread local array written then reduced."""
    b = KernelBuilder(name)
    src = b.arg_ptr("src", read_only=True)
    dst = b.arg_ptr("dst")
    nn = b.arg_scalar("n")
    tmp = b.local_var("tmp", words_per_thread=words)
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)
    with b.if_(pred):
        base = b.ld_idx(src, gtid, dtype="f32")
        with b.loop(words) as w:
            b.st_local(tmp, w, b.fmad(base, 0.5, w), dtype="f32")
        acc = b.mov(0.0)
        with b.loop(words) as w:
            acc = b.fadd(acc, b.ld_local(tmp, w, dtype="f32"))
        b.st_idx(dst, gtid, acc, dtype="f32")
    kernel = b.build()
    return Workload(
        name=name,
        buffers=[BufferSpec("src", n * 4, "randf", read_only=True),
                 BufferSpec("dst", n * 4, "zero")],
        repeats=repeats,
        runs=[KernelRun(kernel,
                        {"src": _buf("src"), "dst": _buf("dst"),
                         "n": _scalar(n)},
                        workgroups=-(-n // wg_size), wg_size=wg_size)])


def compute_heavy(name: str, *, n: int, wg_size: int, iters: int = 24,
                  nbuffers: int = 2, repeats: int = 1) -> Workload:
    """Monte-Carlo / transcendental-heavy kernel: few memory operations."""
    b = KernelBuilder(name)
    ptrs = [b.arg_ptr(f"b{i}") for i in range(nbuffers)]
    nn = b.arg_scalar("n")
    gtid = b.gtid()
    pred = b.setp("lt", gtid, nn)
    with b.if_(pred):
        x = b.ld_idx(ptrs[0], gtid, dtype="f32")
        with b.loop(iters):
            x = b.fsqrt(b.fadd(b.fmul(x, x), 0.25))
            x = b.fexp(b.fmul(x, -0.125))
        b.st_idx(ptrs[-1], gtid, x, dtype="f32")
    kernel = b.build()
    args: Dict[str, ArgSpec] = {f"b{i}": _buf(f"b{i}")
                                for i in range(nbuffers)}
    args["n"] = _scalar(n)
    return Workload(
        name=name,
        buffers=[BufferSpec(f"b{i}", n * 4, "randf")
                 for i in range(nbuffers)],
        repeats=repeats,
        runs=[KernelRun(kernel, args, workgroups=-(-n // wg_size),
                        wg_size=wg_size)])


def many_launches(name: str, *, n: int, wg_size: int, launches: int,
                  memory_bound: bool = True, nbuffers: int = 4,
                  repeats: int = 1) -> Workload:
    """streamcluster-style: a small memory-bound kernel launched many times
    (1000 launches in the paper — the per-launch-tool killer)."""
    base = multi_buffer_stream(name, n=n, wg_size=wg_size,
                               nbuffers=nbuffers,
                               rounds=3 if memory_bound else 1)
    return Workload(name=name, buffers=base.buffers,
                    runs=base.runs * 1, repeats=launches * repeats)
