"""High-level convenience facade: one warm device behind one object.

Most examples, tests and benchmarks follow the same pattern — create a
driver and a GPU with some shield configuration, allocate buffers, launch
a kernel, run it and read the results.  :class:`GpuSession` packages that
pattern as a thin facade over :class:`~repro.device.device.GpuDevice`,
which owns the driver/GPU/shield stack and the launch queue:

>>> from repro import GpuSession, nvidia_config
>>> session = GpuSession(nvidia_config(num_cores=2))
>>> buf = session.driver.malloc(1024)
>>> # ... build a kernel, then:
>>> # result, violations = session.run(kernel, {"a": buf}, workgroups=2,
>>> #                                   wg_size=64)

Pass ``device=`` to wrap an existing (e.g. cache-acquired) device; the
session then adds nothing but the historical attribute surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.shield import GPUShield, ShieldConfig
from repro.core.violations import ViolationRecord
from repro.device.device import GpuDevice
from repro.driver.driver import ArgValue, GpuDriver, LaunchContext
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import GPU, LaunchResult
from repro.isa.program import Kernel


class GpuSession:
    """A GPU context: one device (driver + GPU + optional shield)."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 shield: Optional[ShieldConfig] = None,
                 seed: int = 0xC0FFEE,
                 device: Optional[GpuDevice] = None):
        if device is None:
            device = GpuDevice(config, shield=shield, seed=seed)
        self.device = device
        self.config = device.config

    @property
    def driver(self) -> GpuDriver:
        return self.device.driver

    @property
    def gpu(self) -> GPU:
        return self.device.gpu

    @property
    def shield(self) -> GPUShield:
        return self.device.shield

    @property
    def seed(self) -> int:
        """The seed the device currently runs under (§5.4 key/ID RNG)."""
        return self.device.seed

    @property
    def stats(self):
        """The GPU's unified :class:`~repro.analysis.stats.StatsRegistry`."""
        return self.device.stats

    def run(self, kernel: Kernel, args: Dict[str, ArgValue],
            workgroups: int, wg_size: int
            ) -> Tuple[LaunchResult, List[ViolationRecord]]:
        """Launch, execute and finish one kernel; returns (result, report)."""
        return self.device.run(kernel, args, workgroups, wg_size)

    def run_pair(self, launches: Sequence[LaunchContext], mode: str
                 ) -> Tuple[LaunchResult, List[ViolationRecord]]:
        """Run prepared launches concurrently (§6.2 multi-kernel modes)."""
        return self.device.run_pair(launches, mode)
