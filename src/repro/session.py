"""High-level convenience facade: driver + GPU in one object.

Most examples, tests and benchmarks follow the same pattern — create a
driver and a GPU with some shield configuration, allocate buffers, launch
a kernel, run it and read the results.  :class:`GpuSession` packages that
pattern:

>>> from repro import GpuSession, nvidia_config
>>> session = GpuSession(nvidia_config(num_cores=2))
>>> buf = session.driver.malloc(1024)
>>> # ... build a kernel, then:
>>> # result, violations = session.run(kernel, {"a": buf}, workgroups=2,
>>> #                                   wg_size=64)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.shield import GPUShield, ShieldConfig
from repro.core.violations import ViolationRecord
from repro.driver.driver import ArgValue, GpuDriver, LaunchContext
from repro.gpu.config import GPUConfig, nvidia_config
from repro.gpu.gpu import GPU, LaunchResult
from repro.isa.program import Kernel


class GpuSession:
    """A GPU context: one driver, one GPU, one (optional) shield."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 shield: Optional[ShieldConfig] = None,
                 seed: int = 0xC0FFEE):
        self.config = config or nvidia_config()
        gpushield = GPUShield(shield) if shield is not None else None
        self.driver = GpuDriver(self.config, shield=gpushield, seed=seed)
        self.gpu = GPU(self.driver)

    @property
    def shield(self) -> GPUShield:
        return self.driver.shield

    @property
    def stats(self):
        """The GPU's unified :class:`~repro.analysis.stats.StatsRegistry`."""
        return self.gpu.stats

    def run(self, kernel: Kernel, args: Dict[str, ArgValue],
            workgroups: int, wg_size: int
            ) -> Tuple[LaunchResult, List[ViolationRecord]]:
        """Launch, execute and finish one kernel; returns (result, report)."""
        launch = self.driver.launch(kernel, args, workgroups, wg_size)
        result = self.gpu.run(launch)
        violations = self.driver.finish(launch)
        return result, violations

    def run_pair(self, launches: Sequence[LaunchContext], mode: str
                 ) -> Tuple[LaunchResult, List[ViolationRecord]]:
        """Run prepared launches concurrently (§6.2 multi-kernel modes)."""
        result = self.gpu.run(list(launches), mode=mode)
        violations: List[ViolationRecord] = []
        for launch in launches:
            violations.extend(self.driver.finish(launch))
        return result, violations
