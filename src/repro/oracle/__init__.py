"""The conformance oracle: stage-level traces as ground truth.

Built on :mod:`repro.analysis.trace`, this package captures the full
coalesce→translate→cache→check→commit event stream of a workload
(:mod:`~repro.oracle.capture`), diffs two captures down to the first
divergent event (:mod:`~repro.oracle.diff`), cross-validates a capture
against the violation log and the stats registry
(:mod:`~repro.oracle.invariants`), and pins canonical traces as a
golden corpus under ``tests/data/golden/``
(:mod:`~repro.oracle.golden`).  ``python -m repro oracle`` is the CLI;
``oracle.diff`` jobs shard subjects across the parallel runner.
"""

from repro.oracle.capture import (CAPTURE_CAPACITY, CapturedTrace,
                                  ORACLE_WORKLOADS, capture,
                                  config_fingerprint, expand_subjects)
from repro.oracle.diff import (DiffResult, Divergence,
                               FingerprintMismatchError,
                               SchemaMismatchError, diff_captures,
                               diff_wire_events)
from repro.oracle.faults import CoalescerFault, injected_coalescer_fault
from repro.oracle.golden import (GOLDEN_ENGINE, GOLDEN_SUBJECTS,
                                 default_golden_root, load_golden,
                                 record_golden, verify_golden)
from repro.oracle.invariants import InvariantReport, check_capture

__all__ = [
    "CAPTURE_CAPACITY",
    "CapturedTrace",
    "ORACLE_WORKLOADS",
    "capture",
    "config_fingerprint",
    "expand_subjects",
    "DiffResult",
    "Divergence",
    "FingerprintMismatchError",
    "SchemaMismatchError",
    "diff_captures",
    "diff_wire_events",
    "CoalescerFault",
    "injected_coalescer_fault",
    "GOLDEN_ENGINE",
    "GOLDEN_SUBJECTS",
    "default_golden_root",
    "load_golden",
    "record_golden",
    "verify_golden",
    "InvariantReport",
    "check_capture",
]
