"""The trace-diff engine: first divergent event, with stage context.

Two captures of the same subject under different legs (slow vs fast
engine, current tree vs golden, clean vs fault-injected) are compared
event by event over the unified access+stage stream.  The first
mismatch is reported with the differing fields and a window of the
preceding common events — enough context to name *which access, at
which stage, on which core* went wrong, which end-of-run digests never
could.

Comparisons refuse to run across schema versions or configuration
fingerprints: a diff between incompatible recordings would report
garbage divergences, so it is an error, not a result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import StatsSnapshot
from repro.oracle.capture import CapturedTrace


class SchemaMismatchError(RuntimeError):
    """Two traces recorded under different wire-format versions."""


class FingerprintMismatchError(RuntimeError):
    """Two traces recorded under different GPU/shield configurations."""


@dataclass
class Divergence:
    """The first point where two event streams disagree."""

    index: int
    a: Optional[Dict[str, object]]      # None when stream a ended early
    b: Optional[Dict[str, object]]
    fields: List[str]                   # differing keys ("<length>" for
                                        # an early stream end)
    context: List[Dict[str, object]]    # preceding common events

    def to_dict(self) -> Dict[str, object]:
        return {"index": self.index, "a": self.a, "b": self.b,
                "fields": self.fields, "context": self.context}

    def describe(self) -> str:
        lines = [f"first divergent event at stream index {self.index} "
                 f"(fields: {', '.join(self.fields)})"]
        for ev in self.context:
            lines.append(f"    ... {ev}")
        lines.append(f"    a: {self.a}")
        lines.append(f"    b: {self.b}")
        return "\n".join(lines)


def diff_wire_events(a: List[Dict[str, object]],
                     b: List[Dict[str, object]],
                     context: int = 3) -> Optional[Divergence]:
    """First mismatch between two wire-event lists, or ``None``."""
    common = min(len(a), len(b))
    for i in range(common):
        if a[i] != b[i]:
            keys = sorted(set(a[i]) | set(b[i]))
            fields = [k for k in keys if a[i].get(k) != b[i].get(k)]
            return Divergence(index=i, a=a[i], b=b[i], fields=fields,
                              context=a[max(0, i - context):i])
    if len(a) != len(b):
        i = common
        return Divergence(
            index=i,
            a=a[i] if i < len(a) else None,
            b=b[i] if i < len(b) else None,
            fields=["<length>"],
            context=a[max(0, i - context):i])
    return None


@dataclass
class DiffResult:
    """Everything one subject's two-leg comparison established."""

    subject: str
    a_label: str
    b_label: str
    events: Tuple[int, int]
    cycles: Tuple[int, int]
    divergence: Optional[Divergence] = None
    stats_diff: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    violations_equal: bool = True

    @property
    def ok(self) -> bool:
        return (self.divergence is None and not self.stats_diff
                and self.violations_equal
                and self.cycles[0] == self.cycles[1])

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "a": self.a_label,
            "b": self.b_label,
            "ok": self.ok,
            "events": list(self.events),
            "cycles": list(self.cycles),
            "divergence": (self.divergence.to_dict()
                           if self.divergence else None),
            "stats_diff": {k: list(v) for k, v in self.stats_diff.items()},
            "violations_equal": self.violations_equal,
        }

    def describe(self) -> str:
        head = (f"{self.subject}: {self.a_label} vs {self.b_label} — "
                f"{'identical' if self.ok else 'DIVERGED'} "
                f"({self.events[0]}/{self.events[1]} events, "
                f"cycles {self.cycles[0]}/{self.cycles[1]})")
        if self.ok:
            return head
        parts = [head]
        if self.divergence is not None:
            parts.append(self.divergence.describe())
        if self.stats_diff:
            shown = list(self.stats_diff.items())[:10]
            parts.append("stats diff: " + "; ".join(
                f"{k}: {a} vs {b}" for k, (a, b) in shown))
        if not self.violations_equal:
            parts.append("violation logs differ")
        return "\n".join(parts)


def diff_captures(a: CapturedTrace, b: CapturedTrace,
                  context: int = 3) -> DiffResult:
    """Compare two captures of one subject; raises on schema or
    configuration mismatch (those are operator errors, not findings)."""
    if a.schema_version != b.schema_version:
        raise SchemaMismatchError(
            f"cannot diff traces with different schema versions: "
            f"{a.engine} has schema_version={a.schema_version}, "
            f"{b.engine} has schema_version={b.schema_version} — "
            f"re-record the older trace "
            f"(python -m repro oracle record)")
    if a.fingerprint != b.fingerprint:
        raise FingerprintMismatchError(
            f"cannot diff traces recorded under different GPU/shield "
            f"configurations: fingerprint {a.fingerprint} != "
            f"{b.fingerprint} for subject {a.subject!r}")
    divergence = diff_wire_events(a.wire_events(), b.wire_events(),
                                  context=context)
    stats_diff = StatsSnapshot(a.stats).diff(StatsSnapshot(b.stats))
    return DiffResult(
        subject=a.subject,
        a_label=a.engine,
        b_label=b.engine,
        events=(len(a.events), len(b.events)),
        cycles=(a.cycles, b.cycles),
        divergence=divergence,
        stats_diff=stats_diff,
        violations_equal=a.violations == b.violations)
