"""Oracle jobs on the parallel runner: one subject per job.

``oracle.diff`` jobs are self-contained — the payload names a subject
and a mode, the worker captures every leg in-process and returns the
serialized :class:`~repro.oracle.diff.DiffResult` plus both legs'
invariant reports.  Because captures are deterministic, a sharded
sweep is observably identical to a serial one (the PR 3 runner
guarantees the rest: crash isolation, retries, checkpoint/resume).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.runner.job import JobContext, JobSpec

DIFF_KIND = "oracle.diff"

#: Slow-engine stage-level captures of the artifact workloads are the
#: slowest legs; one subject comfortably fits, with margin for CI.
DEFAULT_SUBJECT_TIMEOUT = 900.0


def plan_diff_jobs(subjects: Sequence[str], *, mode: str = "engines",
                   engines: Sequence[str] = ("slow", "fast"),
                   golden_root: Optional[str] = None,
                   stage_level: bool = True,
                   invariants: bool = True, seed: int = 11,
                   timeout: float = DEFAULT_SUBJECT_TIMEOUT,
                   ) -> List[JobSpec]:
    """One self-contained job per subject."""
    plan: List[JobSpec] = []
    for index, subject in enumerate(subjects):
        plan.append(JobSpec(
            job_id=f"oracle-{index:04d}",
            kind=DIFF_KIND,
            seed=seed,
            timeout=timeout,
            max_retries=1,
            retry_backoff=0.5,
            payload={
                "subject": subject,
                "mode": mode,
                "engines": list(engines),
                "golden_root": golden_root,
                "stage_level": stage_level,
                "invariants": invariants,
            }))
    return plan


def oracle_diff_job(payload: dict, ctx: JobContext) -> dict:
    """Worker entrypoint: capture, diff and invariant-check one subject."""
    from repro.oracle.capture import capture
    from repro.oracle.diff import diff_captures
    from repro.oracle.golden import verify_golden
    from repro.oracle.invariants import check_capture

    subject = payload["subject"]
    mode = payload.get("mode", "engines")
    stage_level = bool(payload.get("stage_level", True))
    run_invariants = bool(payload.get("invariants", True))
    captures = []

    if mode == "engines":
        leg_a, leg_b = payload["engines"]
        a = capture(subject, engine=leg_a, stage_level=stage_level)
        b = capture(subject, engine=leg_b, stage_level=stage_level)
        captures = [a, b]
        diff = diff_captures(a, b)
    elif mode == "golden":
        engines = payload.get("engines") or [""]
        diffs = [verify_golden(subject, root=payload.get("golden_root"),
                               engine=eng) for eng in engines]
        # Report the first failing leg (or the last passing one).
        diff = next((d for d in diffs if not d.ok), diffs[-1])
    elif mode == "invariants":
        engines = payload.get("engines") or [""]
        captures = [capture(subject, engine=eng, stage_level=stage_level)
                    for eng in engines]
        diff = None
        run_invariants = True
    else:
        raise ValueError(f"unknown oracle job mode {mode!r}")

    invariant_reports: List[Dict[str, object]] = []
    if run_invariants:
        for cap in captures:
            invariant_reports.append(check_capture(cap).to_dict())

    ok = (diff is None or diff.ok) \
        and all(r["ok"] for r in invariant_reports)
    counters = ctx.stats.counters("oracle.diff")
    counters["subjects"] = counters.get("subjects", 0) + 1
    if not ok:
        counters["divergent"] = counters.get("divergent", 0) + 1
    return {
        "subject": subject,
        "mode": mode,
        "ok": ok,
        "diff": diff.to_dict() if diff is not None else None,
        "invariants": invariant_reports,
    }
