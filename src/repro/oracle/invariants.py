"""Cross-layer invariant checking over a captured trace.

A trace is only an oracle if it agrees with every other layer that
observed the same run.  :func:`check_capture` holds a
:class:`~repro.oracle.capture.CapturedTrace` to:

1. **Trace vs issue counters** — access events equal
   ``cores.*.issue.mem_instructions``; summed non-shared transactions
   equal ``cores.*.issue.transactions``.
2. **Trace vs cache counters** — per-space transaction sums equal the
   matching L1 structure's ``hits + misses`` (global/local → L1D,
   const → constant cache, texture → texture cache).
3. **Trace vs violation log** — blocked events (``allowed=False``) and
   drained :class:`ViolationRecord`\\ s match 1:1 on
   (kernel_id, cycle, lo, hi, is_store).
4. **Cycle monotonicity** — per (core, kernel) the access stream never
   goes backwards in time.
5. **Stage structure** (stage-level captures) — every non-shared
   access is preceded by exactly one coalesce event whose segments
   tile the warp's lo/hi footprint, one translate + one cache event
   per transaction (same segment bases, same order), and one check
   event whose verdict matches; shared accesses carry no stage events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.stats import StatsSnapshot
from repro.analysis.trace import StageEvent, TraceEvent
from repro.gpu.coalescer import CoalescedAccess
from repro.oracle.capture import CapturedTrace


@dataclass
class InvariantReport:
    """Outcome of one capture's cross-layer validation."""

    subject: str
    engine: str
    checked: Dict[str, int] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {"subject": self.subject, "engine": self.engine,
                "ok": self.ok, "checked": self.checked,
                "failures": self.failures}

    def describe(self) -> str:
        status = "ok" if self.ok else "FAILED"
        head = (f"{self.subject} [{self.engine}]: invariants {status} "
                f"({sum(self.checked.values())} checks)")
        return "\n".join([head] + [f"    {f}" for f in self.failures[:20]])


def _space_l1(space: str) -> str:
    if space == "const":
        return "const"
    if space == "texture":
        return "tex"
    return "l1d"


def check_capture(cap: CapturedTrace) -> InvariantReport:
    report = InvariantReport(subject=cap.subject, engine=cap.engine)
    fail = report.failures.append
    checked = report.checked
    snap = StatsSnapshot(cap.stats)

    access_events = [e for e in cap.events if isinstance(e, TraceEvent)]
    stage_events = [e for e in cap.events if isinstance(e, StageEvent)]

    # -- 1: trace vs issue counters ---------------------------------------
    issued = int(snap.total("cores.*.issue.mem_instructions"))
    if len(access_events) != issued:
        fail(f"access events ({len(access_events)}) != "
             f"cores.*.issue.mem_instructions ({issued})")
    traced_tx = sum(e.transactions for e in access_events
                    if e.space != "shared")
    counted_tx = int(snap.total("cores.*.issue.transactions"))
    if traced_tx != counted_tx:
        fail(f"summed non-shared transactions ({traced_tx}) != "
             f"cores.*.issue.transactions ({counted_tx})")
    checked["issue"] = 2

    # -- 2: trace vs per-space L1 traffic ---------------------------------
    per_space: Dict[str, int] = {}
    for ev in access_events:
        if ev.space != "shared":
            per_space[ev.space] = per_space.get(ev.space, 0) \
                + ev.transactions
    per_l1: Dict[str, int] = {}
    for space, count in per_space.items():
        comp = _space_l1(space)
        per_l1[comp] = per_l1.get(comp, 0) + count
    for comp in ("l1d", "const", "tex"):
        probes = int(snap.total(f"cores.*.{comp}.hits")
                     + snap.total(f"cores.*.{comp}.misses"))
        expect = per_l1.get(comp, 0)
        if probes != expect:
            fail(f"trace transactions for {comp} ({expect}) != "
                 f"{comp} hits+misses ({probes})")
        checked[f"space.{comp}"] = 1

    # -- 3: blocked events vs the violation log ---------------------------
    blocked = sorted((e.kernel_id, e.cycle, e.lo, e.hi, e.is_store)
                     for e in access_events if not e.allowed)
    logged = sorted((int(v["kernel_id"]), int(v["cycle"]), int(v["lo"]),
                     int(v["hi"]), bool(v["is_store"]))
                    for v in cap.violations)
    if blocked != logged:
        fail(f"blocked events ({len(blocked)}) and violation records "
             f"({len(logged)}) do not match 1:1; first difference: "
             f"{next((p for p in zip(blocked, logged) if p[0] != p[1]), (blocked or logged)[:1])}")
    checked["violations"] = 1

    # -- 4: cycle monotonicity per (core, kernel) -------------------------
    last_cycle: Dict[tuple, int] = {}
    for ev in access_events:
        key = (ev.core, ev.kernel_id)
        if ev.cycle < last_cycle.get(key, -1):
            fail(f"cycle went backwards on core {ev.core} kernel "
                 f"{ev.kernel_id}: {last_cycle[key]} -> {ev.cycle}")
            break
        last_cycle[key] = ev.cycle
    checked["monotone"] = len(access_events)

    # -- 5: stage structure ----------------------------------------------
    if cap.stage_level:
        _check_stage_structure(cap, access_events, stage_events, report)
    return report


def _check_stage_structure(cap: CapturedTrace,
                           access_events: List[TraceEvent],
                           stage_events: List[StageEvent],
                           report: InvariantReport) -> None:
    fail = report.failures.append
    line = cap.line_size
    pending: Dict[int, List[StageEvent]] = {}
    groups = 0
    races = 0
    for ev in cap.events:
        if isinstance(ev, StageEvent):
            if ev.stage == "race":
                # Race-detector events are emitted at commit, before the
                # access's own trace event, and are not part of the
                # coalesce/translate/cache/check pipeline structure.
                races += 1
                continue
            pending.setdefault(ev.core, []).append(ev)
            continue
        group = pending.pop(ev.core, [])
        groups += 1
        if ev.space == "shared":
            if group:
                fail(f"shared access at cycle {ev.cycle} core {ev.core} "
                     f"has {len(group)} stage events (expected none)")
            continue
        expect = 2 + 2 * ev.transactions  # coalesce + (tr+cache)*ntx + check
        has_check = bool(group) and group[-1].stage == "check"
        if not has_check:
            expect -= 1
        if len(group) != expect or not group or \
                group[0].stage != "coalesce":
            fail(f"access at cycle {ev.cycle} core {ev.core}: stage "
                 f"group malformed ({[g.stage for g in group]} for "
                 f"{ev.transactions} transactions)")
            continue
        co = group[0]
        if (co.lo, co.hi, co.transactions) != (ev.lo, ev.hi,
                                               ev.transactions):
            fail(f"coalesce event disagrees with access at cycle "
                 f"{ev.cycle} core {ev.core}: "
                 f"({co.lo}, {co.hi}, {co.transactions}) != "
                 f"({ev.lo}, {ev.hi}, {ev.transactions})")
        ca = CoalescedAccess(transactions=co.segments, min_addr=co.lo,
                             max_addr=co.hi,
                             active_lanes=co.active_lanes)
        if not ca.tiles_footprint(line):
            fail(f"coalesce segments {list(co.segments)} do not tile "
                 f"footprint [{co.lo}, {co.hi}] at cycle {ev.cycle} "
                 f"core {ev.core}")
        pairs = group[1:1 + 2 * ev.transactions]
        translates = pairs[0::2]
        caches = pairs[1::2]
        if ([t.stage for t in translates] != ["translate"] * ev.transactions
                or [c.stage for c in caches] != ["cache"] * ev.transactions):
            fail(f"translate/cache interleave malformed at cycle "
                 f"{ev.cycle} core {ev.core}")
        elif (tuple(t.tx for t in translates) != co.segments
                or tuple(c.tx for c in caches) != co.segments):
            fail(f"per-transaction stage events do not visit the "
                 f"coalesced segments in order at cycle {ev.cycle} "
                 f"core {ev.core}")
        if has_check:
            ck = group[-1]
            if ck.allowed != ev.allowed:
                fail(f"check verdict ({ck.allowed}) disagrees with "
                     f"access event ({ev.allowed}) at cycle {ev.cycle} "
                     f"core {ev.core}")
        elif not ev.allowed:
            fail(f"blocked access without a check stage event at cycle "
                 f"{ev.cycle} core {ev.core}")
        for sub in group:
            if (sub.cycle, sub.warp_id, sub.kernel_id) != \
                    (ev.cycle, ev.warp_id, ev.kernel_id):
                fail(f"stage event identity mismatch inside access at "
                     f"cycle {ev.cycle} core {ev.core}")
                break
    leftover = sum(len(v) for v in pending.values())
    if leftover:
        fail(f"{leftover} stage events not followed by their access "
             f"event")
    report.checked["stage_groups"] = groups
    report.checked["race_events"] = races
