"""Deterministic fault injection for oracle self-tests.

The conformance oracle is only trustworthy if a real defect shows up as
a localised first-divergent event.  :func:`injected_coalescer_fault`
plants exactly that kind of defect: on the Nth coalesce across the
whole GPU it flips one bit of the first emitted transaction base — a
single-event corruption of the ACU output that then ripples through
the TLB/cache stages.  The trace-diff must pin the divergence to that
coalesce stage event (and the fault-localisation test asserts it
does).

Injection wraps ``pipeline.coalesce`` per core, which both engines
funnel through when stage-level tracing is on (the fast lane delegates
to the reference pipeline for traced accesses).  The wrapper is an
instance-attribute shadow and is always removed on exit, so a warm
device never returns to the pool carrying a fault.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.gpu.coalescer import CoalescedAccess


@dataclass(frozen=True)
class CoalescerFault:
    """Flip ``bit`` of the first transaction base of the ``site``-th
    coalesce (0-based, counted across every core in dispatch order)."""

    site: int
    bit: int = 7     # 1 << 7 = 128: shifts the segment by one line


@contextmanager
def injected_coalescer_fault(gpu, fault):
    """Scoped injection; ``fault=None`` is a no-op passthrough."""
    if fault is None:
        yield None
        return
    counter = [0]
    pipelines = [core.pipeline for core in gpu.cores]
    for pipeline in pipelines:
        original = pipeline.coalesce

        def wrapped(request, _original=original):
            ca = _original(request)
            site = counter[0]
            counter[0] += 1
            if site != fault.site:
                return ca
            txs = list(ca.transactions)
            txs[0] ^= 1 << fault.bit
            return CoalescedAccess(transactions=tuple(txs),
                                   min_addr=ca.min_addr,
                                   max_addr=ca.max_addr,
                                   active_lanes=ca.active_lanes)

        pipeline.coalesce = wrapped
    try:
        yield counter
    finally:
        for pipeline in pipelines:
            # Drop the instance-attribute shadow; the class method
            # resurfaces untouched.
            pipeline.__dict__.pop("coalesce", None)
