"""The golden-trace corpus: canonical recordings pinned in the repo.

``tests/data/golden/`` holds one JSONL file per golden subject — a
schema-versioned, content-hashed stage-level trace recorded under the
reference (slow) engine — plus a ``manifest.json`` indexing them.  CI
and the tier-1 suite replay every subject under both engines and
require the streams to match the recording field for field.

Regeneration policy: goldens are only re-recorded when an intentional
behavioural change lands (a new stage, a timing-model fix, a schema
bump) — run ``python -m repro oracle record`` and commit the diff
alongside the change that explains it.  A golden that changes without
an explanation is a regression, not an update.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.trace import TRACE_SCHEMA_VERSION, event_from_wire
from repro.oracle.capture import CapturedTrace, capture

#: The pinned corpus: every template subject (distinct access shapes —
#: affine streams, halo stencils, indirect gather/scatter, tree
#: reduction) plus fuzz seeds whose drawn cases include an attack (so
#: blocked events and violation records are part of the corpus).
GOLDEN_SUBJECTS: Tuple[str, ...] = (
    "tpl:streaming",
    "tpl:stencil",
    "tpl:gather",
    "tpl:scatter",
    "tpl:reduction",
    "fuzz:101",
    "fuzz:202",
    "fuzz:303",
)

#: Goldens are recorded under the reference engine; the fast engine
#: must reproduce them bit-for-bit (the engine contract).
GOLDEN_ENGINE = "slow"

MANIFEST_NAME = "manifest.json"


class CorruptGoldenError(RuntimeError):
    """A golden file's content hash no longer matches its events."""


def default_golden_root() -> Path:
    """``tests/data/golden`` next to this checkout's test suite."""
    return Path(__file__).resolve().parents[3] / "tests" / "data" / "golden"


def golden_filename(subject: str) -> str:
    return subject.replace(":", "__").replace("@", "_at_") + ".jsonl"


def write_golden(cap: CapturedTrace, path: Path) -> Dict[str, object]:
    """Serialise one capture as a golden file; returns its header."""
    header = cap.header()
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for wire in cap.wire_events():
            fh.write(json.dumps(wire, sort_keys=True) + "\n")
    return header


def load_golden(path: Path) -> CapturedTrace:
    """Parse and hash-verify one golden file back into a capture."""
    with Path(path).open() as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise CorruptGoldenError(f"golden file {path} is empty")
    header = json.loads(lines[0])
    events = [event_from_wire(json.loads(line)) for line in lines[1:]]
    cap = CapturedTrace(
        subject=header["subject"],
        engine=header["engine"],
        seed=int(header["seed"]),
        stage_level=bool(header["stage_level"]),
        schema_version=int(header["schema_version"]),
        fingerprint=header["fingerprint"],
        line_size=int(header["line_size"]),
        cycles=int(header["cycles"]),
        aborted=bool(header["aborted"]),
        events=events,
        violations=list(header["violations"]),
        stats=dict(header["stats"]))
    if cap.content_hash() != header["content_hash"]:
        raise CorruptGoldenError(
            f"golden file {path} failed content-hash verification "
            f"(recorded {header['content_hash'][:12]}..., recomputed "
            f"{cap.content_hash()[:12]}...) — the file was edited or "
            f"truncated; re-record it")
    return cap


def record_golden(root: Optional[Path] = None,
                  subjects: Sequence[str] = GOLDEN_SUBJECTS,
                  engine: str = GOLDEN_ENGINE) -> Dict[str, object]:
    """(Re)record the corpus; returns the written manifest."""
    root = Path(root) if root is not None else default_golden_root()
    manifest: Dict[str, object] = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "engine": engine,
        "subjects": {},
    }
    for subject in subjects:
        cap = capture(subject, engine=engine, stage_level=True)
        filename = golden_filename(subject)
        header = write_golden(cap, root / filename)
        manifest["subjects"][subject] = {
            "file": filename,
            "content_hash": header["content_hash"],
            "events": len(cap.events),
            "fingerprint": cap.fingerprint,
        }
    with (root / MANIFEST_NAME).open("w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest


def load_manifest(root: Optional[Path] = None) -> Dict[str, object]:
    root = Path(root) if root is not None else default_golden_root()
    with (root / MANIFEST_NAME).open() as fh:
        return json.load(fh)


def verify_golden(subject: str, root: Optional[Path] = None,
                  engine: str = ""):
    """Capture ``subject`` on the current tree and diff it against the
    pinned golden recording.  ``engine`` defaults to the process
    engine, so both engines can be held to the same (slow-recorded)
    golden."""
    from repro.oracle.diff import DiffResult, diff_captures
    root = Path(root) if root is not None else default_golden_root()
    golden = load_golden(root / golden_filename(subject))
    current = capture(subject, engine=engine,
                      stage_level=golden.stage_level)
    result = diff_captures(golden, current)
    return DiffResult(
        subject=subject,
        a_label=f"golden({golden.engine})",
        b_label=f"tree({current.engine})",
        events=result.events,
        cycles=result.cycles,
        divergence=result.divergence,
        stats_diff=result.stats_diff,
        violations_equal=result.violations_equal)
