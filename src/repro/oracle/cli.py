"""``python -m repro oracle`` — record, diff and check traces.

Subcommands::

    oracle record  [--root DIR] [--subjects S ...] [--engine slow]
        (Re)record the golden corpus.  Commit the result only alongside
        the intentional behavioural change that explains it.

    oracle diff    [--engines slow,fast | --golden] [--jobs N] ...
        Replay subjects under two legs and report the first divergent
        event per subject.  Default sweep: the 9 artifact workloads
        plus 50 fuzz seeds, slow vs fast.  ``--golden`` instead holds
        each engine to the pinned corpus.  ``--inject-fault N`` flips
        one coalescer output bit on the Nth access of a single subject
        and prints where the diff localises it (oracle self-test).

    oracle check   [--subjects S ...] [--engines fast] [--jobs N]
        Run the cross-layer invariant checker alone.

Exit status is 0 only when every subject is clean; ``--report`` writes
the full machine-readable divergence report (the CI artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.oracle.capture import expand_subjects
from repro.oracle.golden import GOLDEN_SUBJECTS, default_golden_root
from repro.oracle.runner import (DEFAULT_SUBJECT_TIMEOUT, DIFF_KIND,
                                 plan_diff_jobs)


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--subjects", nargs="*", default=None,
                   help="explicit subject list (tpl:/bench:/fuzz:)")
    p.add_argument("--workloads", default=None,
                   help="comma-separated benchmark names for bench: "
                        "subjects (default: the 9 artifact workloads)")
    p.add_argument("--fuzz-seeds", type=int, default=50,
                   help="append fuzz:1..N subjects (default 50)")
    p.add_argument("--scale", type=float, default=None,
                   help="override the bench: subject scale")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = inline)")
    p.add_argument("--report", default=None,
                   help="write the JSON divergence report here")
    p.add_argument("--no-stage-level", action="store_true",
                   help="trace only post-BCU access events")
    p.add_argument("--no-invariants", action="store_true",
                   help="skip the cross-layer invariant checker")
    p.add_argument("--timeout", type=float,
                   default=DEFAULT_SUBJECT_TIMEOUT,
                   help="per-subject wall-clock cap (seconds)")


def _subjects_from(args) -> List[str]:
    if args.subjects:
        return list(args.subjects)
    workloads = (args.workloads.split(",") if args.workloads else None)
    return expand_subjects(workloads, fuzz_seeds=args.fuzz_seeds,
                           scale=args.scale)


def _run_plan(specs, args, mode: str) -> int:
    from repro.runner import run_jobs
    report = run_jobs(specs, jobs=args.jobs, run_name=f"oracle-{mode}")
    results = [report.results[s.job_id] for s in specs]
    hard_failures = [r for r in results if not r.ok]
    payloads = [r.payload for r in results if r.ok]
    bad = [p for p in payloads if not p["ok"]]

    if args.report:
        out = Path(args.report)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w") as fh:
            json.dump({
                "mode": mode,
                "subjects": len(specs),
                "ok": not bad and not hard_failures,
                "failures": [{"job_id": r.job_id, "status": r.status,
                              "error": r.error} for r in hard_failures],
                "results": payloads,
            }, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report: {args.report}")

    clean = len(payloads) - len(bad)
    print(f"oracle {mode}: {clean}/{len(specs)} subjects clean, "
          f"{len(bad)} divergent, {len(hard_failures)} job failures")
    for r in hard_failures:
        print(f"  job {r.job_id} {r.status}: {r.error}")
    for p in bad[:10]:
        print(f"  DIVERGED {p['subject']}:")
        diff = p.get("diff")
        if diff and diff.get("divergence"):
            d = diff["divergence"]
            print(f"    first divergent event at index {d['index']} "
                  f"(fields: {', '.join(d['fields'])})")
            print(f"    a: {d['a']}")
            print(f"    b: {d['b']}")
        for inv in p.get("invariants", []):
            for failure in inv.get("failures", [])[:5]:
                print(f"    invariant [{inv['engine']}]: {failure}")
    return 0 if not bad and not hard_failures else 1


def _cmd_record(args) -> int:
    from repro.oracle.golden import record_golden
    root = Path(args.root) if args.root else default_golden_root()
    subjects = args.subjects or list(GOLDEN_SUBJECTS)
    manifest = record_golden(root, subjects=subjects, engine=args.engine)
    for subject, entry in sorted(manifest["subjects"].items()):
        print(f"recorded {subject}: {entry['events']} events -> "
              f"{entry['file']} ({entry['content_hash'][:12]}...)")
    print(f"golden corpus: {len(manifest['subjects'])} subjects "
          f"under {root}")
    return 0


def _cmd_fault(args, subjects: List[str]) -> int:
    """Inline fault-localisation self-test (single subject, one engine)."""
    from repro.oracle.capture import capture
    from repro.oracle.diff import diff_captures
    from repro.oracle.faults import CoalescerFault
    subject = subjects[0]
    engine = args.engines.split(",")[0]
    fault = CoalescerFault(site=args.inject_fault, bit=args.fault_bit)
    clean = capture(subject, engine=engine, stage_level=True)
    faulted = capture(subject, engine=engine, stage_level=True,
                      fault=fault)
    result = diff_captures(clean, faulted)
    if result.ok:
        print(f"fault at site {fault.site} produced no divergence "
              f"(subject too short?)")
        return 1
    print(result.describe())
    return 0


def _cmd_diff(args) -> int:
    subjects = _subjects_from(args)
    if args.inject_fault is not None:
        return _cmd_fault(args, subjects)
    if args.golden:
        subjects = args.subjects or list(GOLDEN_SUBJECTS)
        root = str(Path(args.root) if args.root else default_golden_root())
        specs = plan_diff_jobs(
            subjects, mode="golden",
            engines=args.engines.split(","), golden_root=root,
            stage_level=not args.no_stage_level,
            invariants=not args.no_invariants, timeout=args.timeout)
        return _run_plan(specs, args, "golden")
    specs = plan_diff_jobs(
        subjects, mode="engines", engines=args.engines.split(","),
        stage_level=not args.no_stage_level,
        invariants=not args.no_invariants, timeout=args.timeout)
    return _run_plan(specs, args, "engines")


def _cmd_check(args) -> int:
    subjects = _subjects_from(args)
    specs = plan_diff_jobs(
        subjects, mode="invariants", engines=args.engines.split(","),
        stage_level=not args.no_stage_level, invariants=True,
        timeout=args.timeout)
    return _run_plan(specs, args, "invariants")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro oracle",
        description="Conformance oracle: record/diff/check memory "
                    "traces.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="(re)record golden traces")
    p_record.add_argument("--root", default=None,
                          help="corpus directory (default "
                               "tests/data/golden)")
    p_record.add_argument("--subjects", nargs="*", default=None)
    p_record.add_argument("--engine", default="slow",
                          help="recording engine (default slow)")

    p_diff = sub.add_parser("diff", help="diff two legs per subject")
    p_diff.add_argument("--engines", default="slow,fast",
                        help="comma-separated legs (default slow,fast)")
    p_diff.add_argument("--golden", action="store_true",
                        help="diff each engine against the golden "
                             "corpus instead")
    p_diff.add_argument("--root", default=None,
                        help="golden corpus directory")
    p_diff.add_argument("--inject-fault", type=int, default=None,
                        metavar="SITE",
                        help="self-test: flip a coalescer bit on the "
                             "SITE-th access of the first subject and "
                             "localise it")
    p_diff.add_argument("--fault-bit", type=int, default=7)
    _add_common(p_diff)

    p_check = sub.add_parser("check", help="invariant checker only")
    p_check.add_argument("--engines", default="fast",
                         help="engines to capture under (default fast)")
    _add_common(p_check)

    args = parser.parse_args(argv)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "diff":
        return _cmd_diff(args)
    return _cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())


# Re-exported for tests that drive the CLI pieces directly.
__all__ = ["main", "DIFF_KIND"]
