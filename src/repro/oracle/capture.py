"""Capture one subject's full memory-trace under one engine.

A *subject* is a short string naming a reproducible workload recipe:

``tpl:<name>``
    A tiny pinned template workload (the golden-corpus set) under the
    paper-default shield.
``bench:<name>[@scale]``
    A registered suite benchmark at ``scale`` (default
    :data:`DEFAULT_BENCH_SCALE`) under the paper-default shield — the
    9 artifact workloads are ``bench:`` subjects over
    :data:`ORACLE_WORKLOADS`.
``fuzz:<seed>``
    The first case drawn from :class:`~repro.fuzz.generator
    .CaseGenerator` for that seed, run exactly the way the
    differential campaign's shield config runs it (mutator attached,
    violations tolerated).

Captures are deterministic: same subject + engine + tree state ⇒ the
same event stream, violation list, stats snapshot and cycle count —
which is what makes them diffable and goldenable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.trace import (TRACE_SCHEMA_VERSION, AnyEvent,
                                  MemoryTracer, event_to_wire)
from repro.engine import engine as engine_ctx
from repro.engine import resolve as resolve_engine
from repro.workloads.suite import RODINIA_FIG19

#: The pinned artifact set the acceptance diff sweeps: Figure 19's nine
#: Rodinia benchmarks (the only artifact list with exactly one workload
#: per entry, and the set every tool-comparison figure leans on).
ORACLE_WORKLOADS: Tuple[str, ...] = tuple(RODINIA_FIG19)

#: Scale for ``bench:`` subjects unless the subject pins its own —
#: small enough that a stage-level trace of every artifact workload
#: stays tractable under the slow engine, large enough to exercise
#: multi-launch control flow, RCache traffic and DRAM misses.
DEFAULT_BENCH_SCALE = 0.25

#: Access-event headroom per capture; stage events get 8x this (see
#: MemoryTracer.STAGE_FANOUT).  A capture that overflows raises — a
#: truncated golden trace would "match" anything that diverges late.
CAPTURE_CAPACITY = 2_000_000

DEFAULT_SEED = 11


def _template_subjects():
    from repro.workloads import templates as T
    return {
        "streaming": lambda: T.streaming("oracle_streaming", n=256,
                                         wg_size=64),
        "stencil": lambda: T.stencil1d("oracle_stencil", n=256,
                                       wg_size=64),
        "gather": lambda: T.gather("oracle_gather", n=128, wg_size=32,
                                   data_len=512),
        "scatter": lambda: T.scatter("oracle_scatter", n=128, wg_size=32,
                                     out_len=512),
        "reduction": lambda: T.reduction("oracle_reduction", n=512,
                                         wg_size=64),
    }


def template_subject_names() -> List[str]:
    return sorted(_template_subjects())


def config_fingerprint(config, shield) -> str:
    """Engine-independent configuration fingerprint.

    Hashes the same (config repr, shield repr) pair the warm device
    pool keys on — minus the resolved engine, because the whole point
    of the oracle is comparing engines over one configuration.
    """
    from repro.device.cache import device_fingerprint
    cfg_repr, shield_repr, _engine = device_fingerprint(config, shield)
    blob = json.dumps([cfg_repr, shield_repr])
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class CapturedTrace:
    """Everything one traced run observed, ready to diff or export."""

    subject: str
    engine: str
    seed: int
    stage_level: bool
    schema_version: int
    fingerprint: str
    line_size: int
    cycles: int
    aborted: bool
    events: List[AnyEvent] = field(default_factory=list)
    violations: List[Dict[str, object]] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    def wire_events(self) -> List[Dict[str, object]]:
        return [event_to_wire(ev) for ev in self.events]

    def content_hash(self) -> str:
        """Hash of every observable: events, violations, stats, cycles."""
        blob = json.dumps({
            "events": self.wire_events(),
            "violations": self.violations,
            "stats": self.stats,
            "cycles": self.cycles,
            "aborted": self.aborted,
        }, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def header(self) -> Dict[str, object]:
        """The schema header the JSONL export leads with."""
        return {
            "schema_version": self.schema_version,
            "subject": self.subject,
            "engine": self.engine,
            "seed": self.seed,
            "stage_level": self.stage_level,
            "fingerprint": self.fingerprint,
            "line_size": self.line_size,
            "cycles": self.cycles,
            "aborted": self.aborted,
            "violations": self.violations,
            "stats": self.stats,
            "content_hash": self.content_hash(),
        }


def build_runner(subject: str, config=None):
    """Materialise a subject into a ready :class:`WorkloadRunner`.

    Returns ``(runner, fingerprint)``; the caller owns ``runner`` and
    must :meth:`close` it.
    """
    from repro.analysis.harness import WorkloadRunner, default_shield
    from repro.gpu.config import nvidia_config

    kind, _, arg = subject.partition(":")
    if kind == "tpl":
        factories = _template_subjects()
        if arg not in factories:
            raise ValueError(f"unknown template subject {arg!r} "
                             f"(have {sorted(factories)})")
        cfg = config or nvidia_config(num_cores=2)
        shield = default_shield()
        runner = WorkloadRunner(factories[arg](), config=cfg,
                                shield=shield, config_name="oracle",
                                seed=DEFAULT_SEED, allow_violations=True)
        return runner, config_fingerprint(cfg, shield)

    if kind == "bench":
        from repro.workloads.suite import get_benchmark
        name, _, scale_s = arg.partition("@")
        scale = float(scale_s) if scale_s else DEFAULT_BENCH_SCALE
        cfg = config or nvidia_config(num_cores=2)
        shield = default_shield()
        runner = WorkloadRunner(get_benchmark(name).build(scale),
                                config=cfg, shield=shield,
                                config_name="oracle", seed=DEFAULT_SEED,
                                allow_violations=True)
        return runner, config_fingerprint(cfg, shield)

    if kind == "fuzz":
        from repro.core.shield import ShieldConfig
        from repro.fuzz.generator import (CaseGenerator, ShieldMutator,
                                          build_workload)
        spec = CaseGenerator(int(arg)).draw(0)
        cfg = config or nvidia_config(num_cores=1)
        shield = ShieldConfig(enabled=True)
        runner = WorkloadRunner(build_workload(spec), config=cfg,
                                shield=shield, config_name="shield",
                                seed=spec.seed & 0xFFFF,
                                allow_violations=True,
                                launch_mutator=ShieldMutator(spec))
        return runner, config_fingerprint(cfg, shield)

    raise ValueError(f"unknown subject kind {kind!r} in {subject!r} "
                     "(want tpl:/bench:/fuzz:)")


def capture(subject: str, *, engine: str = "",
            stage_level: bool = True, config=None,
            fault=None) -> CapturedTrace:
    """Run ``subject`` under ``engine`` with tracing on.

    ``fault`` optionally injects a :class:`~repro.oracle.faults
    .CoalescerFault` for the run — the localisation self-test.  The
    fault wrapper and the tracer are both removed before the device
    returns to the warm pool.
    """
    from repro.oracle.faults import injected_coalescer_fault

    engine = resolve_engine(engine)
    with engine_ctx(engine):
        runner, fingerprint = build_runner(subject, config=config)
        tracer = MemoryTracer(capacity=CAPTURE_CAPACITY,
                              stage_level=stage_level)
        gpu = runner.session.gpu
        gpu.attach_tracer(tracer)
        try:
            with injected_coalescer_fault(gpu, fault):
                record = runner.run()
            snapshot = runner.session.stats.snapshot()
            violations = [asdict(v) for v in runner.last_violations]
            line_size = runner.config.line_size
        finally:
            gpu.detach_tracer()
            runner.close()
    if tracer.dropped or tracer.stage_dropped:
        raise RuntimeError(
            f"capture of {subject!r} overflowed the tracer "
            f"({tracer.dropped} access / {tracer.stage_dropped} stage "
            f"events dropped) — raise CAPTURE_CAPACITY")
    return CapturedTrace(
        subject=subject, engine=engine, seed=runner.seed,
        stage_level=stage_level, schema_version=TRACE_SCHEMA_VERSION,
        fingerprint=fingerprint, line_size=line_size,
        cycles=record.cycles, aborted=record.aborted,
        events=list(tracer.stream), violations=violations,
        stats=snapshot.as_dict())


def expand_subjects(workloads: Optional[Sequence[str]] = None,
                    fuzz_seeds: int = 0,
                    scale: Optional[float] = None) -> List[str]:
    """The default diff sweep: bench subjects + ``fuzz_seeds`` seeds."""
    names = list(workloads if workloads is not None else ORACLE_WORKLOADS)
    suffix = f"@{scale}" if scale is not None else ""
    subjects = [f"bench:{name}{suffix}" for name in names]
    subjects.extend(f"fuzz:{seed}" for seed in range(1, fuzz_seeds + 1))
    return subjects
