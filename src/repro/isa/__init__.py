"""A small register ISA for GPU kernels plus a builder DSL.

Kernels for the simulator are written against :class:`KernelBuilder`,
which emits :class:`~repro.isa.instructions.Instr` lists and — crucially
for the paper's compiler analysis — records the *symbolic expression* of
every address offset, mirroring the operand trees an LLVM pass would
recover from GEP chains (paper Figure 8).
"""

from repro.isa.instructions import (
    DTYPE_SIZE,
    Imm,
    Instr,
    Reg,
    Special,
)
from repro.isa.program import Kernel, KernelParam, LocalVar
from repro.isa.builder import KernelBuilder
from repro.isa import exprs

__all__ = [
    "DTYPE_SIZE",
    "Imm",
    "Instr",
    "Reg",
    "Special",
    "Kernel",
    "KernelParam",
    "LocalVar",
    "KernelBuilder",
    "exprs",
]
