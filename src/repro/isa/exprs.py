"""Symbolic expressions for address offsets.

The :class:`~repro.isa.builder.KernelBuilder` records, for every memory
instruction, the expression tree that produced its byte offset.  These
trees are exactly what the paper's LLVM pass reconstructs by walking GEP
operand chains (Figure 8); our compiler's data-flow analysis evaluates
them with interval arithmetic to perform static bounds checking.

Nodes:

* :class:`Const` — a literal;
* :class:`SpecialRef` — a thread identifier (``gtid``, ``tid``...) whose
  range comes from the launch geometry;
* :class:`ArgRef` — a scalar kernel argument, whose range comes from
  host-code analysis (the launch-time value, or a declared maximum);
* :class:`RangeVal` — a loop induction variable in ``[0, count)``;
* :class:`Bin` — a binary operation;
* :class:`Unknown` — anything the analysis cannot see through (values
  loaded from memory — the indirect accesses that defeat static analysis
  for the paper's graph benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Expr:
    """Base class for offset expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def __repr__(self):
        return str(self.value)


@dataclass(frozen=True)
class SpecialRef(Expr):
    name: str

    def __repr__(self):
        return f"%{self.name}"


@dataclass(frozen=True)
class ArgRef(Expr):
    name: str

    def __repr__(self):
        return f"arg({self.name})"


@dataclass(frozen=True)
class RangeVal(Expr):
    """A loop induction variable: value in ``[0, count - 1]``."""

    count: Expr

    def __repr__(self):
        return f"iota({self.count!r})"


@dataclass(frozen=True)
class Bin(Expr):
    op: str   # add, sub, mul, div, mod, shl, shr, min, max, and
    left: Expr
    right: Expr

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Unknown(Expr):
    """Value invisible to static analysis (e.g. loaded from memory)."""

    source: str = "unknown"

    def __repr__(self):
        return f"?{self.source}"


Interval = Tuple[int, int]
