"""Kernel programs: parameters, local variables, validation, flow tables.

A :class:`Kernel` is the unit the driver launches.  Besides the
instruction list it carries:

* :class:`KernelParam` — the kernel arguments (buffers and scalars);
  the paper's OpenCL limit of 128 arguments is enforced here;
* :class:`LocalVar` — variables placed in off-chip local memory, each
  protected as its own region (paper §5.2.1);
* :class:`AccessInfo` — one row per static memory instruction, linking it
  to the symbolic offset expression for the compiler's analysis.

``validate()`` checks structural well-formedness and precomputes the
jump tables the executor uses for structured control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import IsaError
from repro.isa.exprs import Expr
from repro.isa.instructions import Instr

MAX_KERNEL_ARGS = 128   # OpenCL 2.0 limit cited in paper §2.1


@dataclass(frozen=True)
class KernelParam:
    """One kernel argument."""

    name: str
    kind: str                  # 'buffer' | 'scalar'
    read_only: bool = False    # buffers only
    max_value: Optional[int] = None   # scalars: host-analysis bound (§5.3.2)

    def __post_init__(self):
        if self.kind not in ("buffer", "scalar"):
            raise ValueError(f"bad param kind {self.kind!r}")


@dataclass(frozen=True)
class LocalVar:
    """A local-memory variable: ``words_per_thread`` 32-bit words/thread.

    The driver lays these out interleaved — consecutive threads own
    consecutive words (paper §3.1) — and registers each variable as a
    separate protected region.
    """

    name: str
    words_per_thread: int


@dataclass(frozen=True)
class AccessInfo:
    """Static metadata of one memory instruction (a BAT row precursor)."""

    access_id: int
    param: Optional[str]       # pointer argument / local var; None for
    space: str                 # shared & heap-malloc'd pointers
    is_store: bool
    offset_expr: Expr
    dtype: str
    predicated: bool = False
    #: Control-flow guards active at the access, outermost first: each
    #: is ("cmp"/"notcmp", op, lhs expr, rhs expr) for a recovered
    #: predicate, ("loop",) / ("while",) inside loops, or ("opaque",)
    #: when the predicate's provenance is unknown.  Consumed by the
    #: compiler's may-race pass to bound the executing thread set.
    guards: tuple = ()


@dataclass
class Kernel:
    """An executable kernel program."""

    name: str
    instructions: List[Instr]
    num_regs: int
    params: List[KernelParam] = field(default_factory=list)
    local_vars: List[LocalVar] = field(default_factory=list)
    shared_bytes: int = 0
    accesses: List[AccessInfo] = field(default_factory=list)
    # register index holding each param / local base pointer at entry
    arg_regs: Dict[str, int] = field(default_factory=dict)
    # control-flow match tables, filled by validate()
    flow: Dict[int, int] = field(default_factory=dict)        # open -> close
    else_of: Dict[int, int] = field(default_factory=dict)     # if -> else

    def __post_init__(self):
        self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check structure and build the control-flow jump tables."""
        if len(self.params) > MAX_KERNEL_ARGS:
            raise IsaError(
                f"{self.name}: {len(self.params)} kernel arguments exceed the "
                f"limit of {MAX_KERNEL_ARGS}")
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise IsaError(f"{self.name}: duplicate parameter names")

        self.flow.clear()
        self.else_of.clear()
        stack: List[tuple] = []
        for pc, instr in enumerate(self.instructions):
            op = instr.op
            if op in ("if", "loop", "while"):
                stack.append((op, pc))
            elif op == "else":
                if not stack or stack[-1][0] != "if":
                    raise IsaError(f"{self.name}: 'else' at pc={pc} without 'if'")
                open_pc = stack[-1][1]
                if open_pc in self.else_of:
                    raise IsaError(f"{self.name}: second 'else' for if@{open_pc}")
                self.else_of[open_pc] = pc
            elif op in ("endif", "endloop", "endwhile"):
                want = {"endif": "if", "endloop": "loop", "endwhile": "while"}[op]
                if not stack or stack[-1][0] != want:
                    raise IsaError(
                        f"{self.name}: '{op}' at pc={pc} without matching "
                        f"'{want}'")
                _, open_pc = stack.pop()
                self.flow[open_pc] = pc
            for operand in instr.srcs:
                self._check_operand(operand, pc)
            if instr.dst is not None:
                self._check_reg(instr.dst.index, pc)
            if instr.pred is not None:
                self._check_reg(instr.pred.index, pc)
        if stack:
            op, pc = stack[-1]
            raise IsaError(f"{self.name}: unterminated '{op}' at pc={pc}")

    def _check_operand(self, operand, pc: int) -> None:
        from repro.isa.instructions import Reg
        if isinstance(operand, Reg):
            self._check_reg(operand.index, pc)

    def _check_reg(self, index: int, pc: int) -> None:
        if not 0 <= index < self.num_regs:
            raise IsaError(
                f"{self.name}: register r{index} out of range at pc={pc}")

    # -- introspection ----------------------------------------------------------

    @property
    def buffer_params(self) -> List[KernelParam]:
        return [p for p in self.params if p.kind == "buffer"]

    @property
    def scalar_params(self) -> List[KernelParam]:
        return [p for p in self.params if p.kind == "scalar"]

    def static_mem_instructions(self) -> int:
        return sum(1 for i in self.instructions if i.is_memory)

    def __len__(self) -> int:
        return len(self.instructions)
