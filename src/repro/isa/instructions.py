"""Instruction set of the simulated GPU.

The ISA is deliberately small but covers what the paper's workloads need:
integer/float ALU ops, predicated loads/stores to four memory spaces
(global, local, shared, heap), structured control flow (IF/ELSE/ENDIF,
counted LOOP, divergent WHILE), workgroup barriers and device-side malloc.

Structured control flow (instead of arbitrary branches) keeps the SIMT
divergence model simple and is faithful to how the benchmark kernels are
actually shaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

# -- operands -----------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """A virtual register, one value per lane."""

    index: int

    def __repr__(self):
        return f"r{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand (int or float)."""

    value: object

    def __repr__(self):
        return f"#{self.value}"


@dataclass(frozen=True)
class Special:
    """A read-only special value: thread/block identifiers.

    Supported names: ``tid`` (thread index inside the workgroup), ``ctaid``
    (workgroup index), ``ntid`` (workgroup size), ``nctaid`` (grid size in
    workgroups), ``gtid`` (global thread index), ``lane`` (index inside the
    sub-workgroup).
    """

    name: str

    def __repr__(self):
        return f"%{self.name}"


SPECIAL_NAMES = frozenset({"tid", "ctaid", "ntid", "nctaid", "gtid", "lane"})

# -- data types ----------------------------------------------------------------

DTYPE_SIZE = {
    "i32": 4,
    "u32": 4,
    "f32": 4,
    "i64": 8,
    "u64": 8,
}

# -- opcodes --------------------------------------------------------------------

ALU_OPS = frozenset({
    "mov", "add", "sub", "mul", "mad", "min", "max", "abs",
    "and", "or", "xor", "not", "shl", "shr",
    "fadd", "fsub", "fmul", "fmad", "fmin", "fmax",
    "setp", "sel", "cvt",
})
SFU_OPS = frozenset({"div", "mod", "fdiv", "fsqrt", "fexp", "flog", "frcp"})
MEM_OPS = frozenset({"ld", "st"})
CTRL_OPS = frozenset({
    "if", "else", "endif", "loop", "endloop", "while", "endwhile",
    "bar", "exit", "malloc",
})
ALL_OPS = ALU_OPS | SFU_OPS | MEM_OPS | CTRL_OPS

CMP_OPS = frozenset({"lt", "le", "eq", "ne", "gt", "ge"})

MEMORY_SPACES = frozenset({"global", "local", "shared", "heap",
                           "const", "texture"})


@dataclass(frozen=True)
class Instr:
    """One machine instruction.

    ``srcs`` layout by opcode:

    * ALU/SFU: operand list in natural order (``mad``: a, b, c; ``setp``:
      a, b with ``cmp`` set; ``sel``: pred, a, b).
    * ``ld``: (base, offset) — effective address = base + offset, the tag
      riding in base's upper bits (Method B/C of Figure 2).
    * ``st``: (base, offset, value).
    * ``if``/``while``: (pred,).
    * ``loop``: (count,).
    * ``malloc``: (size,) with ``dst`` receiving the heap pointer.

    ``access_id`` links memory instructions to the builder's recorded
    offset expressions (consumed by the compiler's static analysis);
    ``param`` names the kernel argument the base pointer came from.
    """

    op: str
    dst: Optional[Reg] = None
    srcs: Tuple = ()
    pred: Optional[Reg] = None       # lane predicate (None = all active)
    pred_invert: bool = False
    cmp: Optional[str] = None        # for setp
    space: Optional[str] = None      # for ld/st
    dtype: str = "i32"
    access_id: Optional[int] = None  # for ld/st: BAT row index
    param: Optional[str] = None      # for ld/st: source pointer argument

    def __post_init__(self):
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown opcode {self.op!r}")
        if self.op in MEM_OPS and self.space not in MEMORY_SPACES:
            raise ValueError(f"{self.op} needs a memory space, got {self.space!r}")
        if self.op == "setp" and self.cmp not in CMP_OPS:
            raise ValueError(f"setp needs a comparison, got {self.cmp!r}")

    @property
    def is_memory(self) -> bool:
        return self.op in MEM_OPS

    @property
    def category(self) -> str:
        if self.op in ALU_OPS:
            return "alu"
        if self.op in SFU_OPS:
            return "sfu"
        if self.op in MEM_OPS:
            return "mem"
        return "ctrl"
