"""KernelBuilder: a small DSL that emits ISA instructions.

The builder plays the role of the CUDA/OpenCL compiler front-end: kernels
are described with Python calls, and the builder

* allocates virtual registers,
* tracks which kernel argument each pointer register derives from (the
  analogue of following GEP base operands), and
* records a symbolic :mod:`~repro.isa.exprs` tree for every value, so the
  compiler's static bounds analysis can replay the paper's operand-tree
  reverse traversal (Figure 8).

Soundness rule: a register overwritten at a deeper control-flow nesting
level than where it was created gets an :class:`~repro.isa.exprs.Unknown`
expression — loop-carried or conditionally-defined indices are never
trusted statically, only genuine launch-bounded expressions are.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.errors import IsaError
from repro.isa import exprs
from repro.isa.instructions import (
    CMP_OPS, DTYPE_SIZE, Imm, Instr, Reg, Special,
)
from repro.isa.program import AccessInfo, Kernel, KernelParam, LocalVar

Operand = Union[Reg, int, float, Special]


@dataclass(frozen=True)
class LocalHandle:
    """Handle to a local-memory variable (base pointer + metadata)."""

    name: str
    base: Reg
    words_per_thread: int


class KernelBuilder:
    """Builds one :class:`~repro.isa.program.Kernel`."""

    def __init__(self, name: str):
        self.name = name
        self._instrs: List[Instr] = []
        self._params: List[KernelParam] = []
        self._locals: List[LocalVar] = []
        self._arg_regs: Dict[str, int] = {}
        self._shared_bytes = 0
        self._nreg = 0
        self._exprs: Dict[int, exprs.Expr] = {}
        self._reg_depth: Dict[int, int] = {}
        self._ptr_param: Dict[int, str] = {}
        self._accesses: List[AccessInfo] = []
        self._ctrl_depth = 0
        self._special_cache: Dict[str, Reg] = {}
        self._built = False
        # Predicate provenance: pred-register index -> ("cmp", op, lhs
        # expr, rhs expr), consumed by the may-race pass to recover the
        # thread set an if_/pred guard admits.  An overwritten register
        # loses its entry (see _write_expr).
        self._setp_info: Dict[int, tuple] = {}
        # Active control-flow guards, innermost last; every recorded
        # access snapshots this stack (AccessInfo.guards).
        self._guard_stack: List[tuple] = []

    # -- registers & operands --------------------------------------------------

    def _fresh(self, expr: exprs.Expr) -> Reg:
        reg = Reg(self._nreg)
        self._nreg += 1
        self._exprs[reg.index] = expr
        self._reg_depth[reg.index] = self._ctrl_depth
        return reg

    def _operand(self, value: Operand) -> Union[Reg, Imm, Special]:
        if isinstance(value, (Reg, Special)):
            return value
        if isinstance(value, (int, float)):
            return Imm(value)
        raise IsaError(f"bad operand {value!r}")

    def _expr_of(self, value: Operand) -> exprs.Expr:
        if isinstance(value, Reg):
            return self._exprs.get(value.index, exprs.Unknown("reg"))
        if isinstance(value, Special):
            return exprs.SpecialRef(value.name)
        if isinstance(value, int):
            return exprs.Const(value)
        return exprs.Unknown("float")

    def _param_of(self, value: Operand) -> Optional[str]:
        if isinstance(value, Reg):
            return self._ptr_param.get(value.index)
        return None

    # -- kernel interface --------------------------------------------------------

    def arg_ptr(self, name: str, read_only: bool = False) -> Reg:
        """Declare a buffer argument; returns the register holding its
        (driver-tagged) base pointer."""
        self._params.append(KernelParam(name=name, kind="buffer",
                                        read_only=read_only))
        reg = self._fresh(exprs.ArgRef(name))
        self._arg_regs[name] = reg.index
        self._ptr_param[reg.index] = name
        return reg

    def arg_scalar(self, name: str, max_value: Optional[int] = None) -> Reg:
        """Declare a scalar argument.  ``max_value`` models the host-code
        analysis bound of §5.3.2 (e.g. a size the host never exceeds)."""
        self._params.append(KernelParam(name=name, kind="scalar",
                                        max_value=max_value))
        reg = self._fresh(exprs.ArgRef(name))
        self._arg_regs[name] = reg.index
        return reg

    def local_var(self, name: str, words_per_thread: int) -> LocalHandle:
        """Declare a local-memory variable (its own protected region)."""
        self._locals.append(LocalVar(name=name,
                                     words_per_thread=words_per_thread))
        pname = f"__local_{name}"
        reg = self._fresh(exprs.ArgRef(pname))
        self._arg_regs[pname] = reg.index
        self._ptr_param[reg.index] = pname
        return LocalHandle(name=name, base=reg,
                           words_per_thread=words_per_thread)

    def shared_mem(self, nbytes: int) -> int:
        """Reserve workgroup shared memory; returns its base offset (0)."""
        base = self._shared_bytes
        self._shared_bytes += nbytes
        return base

    # -- specials ------------------------------------------------------------------

    def _special(self, name: str) -> Reg:
        cached = self._special_cache.get(name)
        if cached is not None:
            return cached
        reg = self._fresh(exprs.SpecialRef(name))
        self._emit(Instr("mov", dst=reg, srcs=(Special(name),)))
        self._special_cache[name] = reg
        return reg

    def tid(self) -> Reg:
        return self._special("tid")

    def ctaid(self) -> Reg:
        return self._special("ctaid")

    def ntid(self) -> Reg:
        return self._special("ntid")

    def nctaid(self) -> Reg:
        return self._special("nctaid")

    def gtid(self) -> Reg:
        return self._special("gtid")

    def lane(self) -> Reg:
        return self._special("lane")

    def gsize(self) -> Reg:
        """Total launched threads = ntid * nctaid."""
        cached = self._special_cache.get("gsize")
        if cached is not None:
            return cached
        reg = self.mul(self.ntid(), self.nctaid())
        self._special_cache["gsize"] = reg
        return reg

    # -- ALU helpers ----------------------------------------------------------------

    def _emit(self, instr: Instr) -> None:
        if self._built:
            raise IsaError("builder already finalised")
        self._instrs.append(instr)

    def _write_expr(self, reg: Reg, expr: exprs.Expr) -> None:
        self._setp_info.pop(reg.index, None)
        created_at = self._reg_depth.get(reg.index, 0)
        if self._ctrl_depth > created_at:
            # Conditional / loop-carried definition: statically opaque.
            self._exprs[reg.index] = exprs.Unknown("loop-carried")
        else:
            self._exprs[reg.index] = expr

    def _alu(self, op: str, a: Operand, b: Operand = None, c: Operand = None,
             out: Optional[Reg] = None, expr_op: Optional[str] = None,
             pred: Optional[Reg] = None) -> Reg:
        srcs = tuple(self._operand(x) for x in (a, b, c) if x is not None)
        if expr_op is None:
            expr = exprs.Unknown(op)
        elif expr_op == "copy":
            expr = self._expr_of(a)
        elif expr_op == "mad":
            expr = exprs.Bin("add",
                             exprs.Bin("mul", self._expr_of(a), self._expr_of(b)),
                             self._expr_of(c))
        else:
            expr = exprs.Bin(expr_op, self._expr_of(a), self._expr_of(b))
        if out is None:
            dst = self._fresh(expr)
        else:
            dst = out
            self._write_expr(dst, expr)
        # Pointer-provenance propagation (following GEP base chains).
        if op in ("mov", "add", "sub", "mad"):
            src_param = self._param_of(a)
            if src_param is not None:
                self._ptr_param[dst.index] = src_param
        self._emit(Instr(op, dst=dst, srcs=srcs, pred=pred))
        return dst

    # Integer ops
    def mov(self, a: Operand, out: Optional[Reg] = None,
            pred: Optional[Reg] = None) -> Reg:
        return self._alu("mov", a, out=out, expr_op="copy", pred=pred)

    def add(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("add", a, b, out=out, expr_op="add", pred=pred)

    def sub(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("sub", a, b, out=out, expr_op="sub", pred=pred)

    def mul(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("mul", a, b, out=out, expr_op="mul", pred=pred)

    def mad(self, a, b, c, out=None, pred=None) -> Reg:
        """dst = a * b + c (the IMAD of Figure 3d)."""
        return self._alu("mad", a, b, c, out=out, expr_op="mad", pred=pred)

    def div(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("div", a, b, out=out, expr_op="div", pred=pred)

    def mod(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("mod", a, b, out=out, expr_op="mod", pred=pred)

    def min_(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("min", a, b, out=out, expr_op="min", pred=pred)

    def max_(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("max", a, b, out=out, expr_op="max", pred=pred)

    def and_(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("and", a, b, out=out, expr_op="and", pred=pred)

    def or_(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("or", a, b, out=out, expr_op=None, pred=pred)

    def xor(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("xor", a, b, out=out, expr_op=None, pred=pred)

    def shl(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("shl", a, b, out=out, expr_op="shl", pred=pred)

    def shr(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("shr", a, b, out=out, expr_op="shr", pred=pred)

    # Float ops (statically opaque as indices)
    def fadd(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("fadd", a, b, out=out, pred=pred)

    def fsub(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("fsub", a, b, out=out, pred=pred)

    def fmul(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("fmul", a, b, out=out, pred=pred)

    def fmad(self, a, b, c, out=None, pred=None) -> Reg:
        return self._alu("fmad", a, b, c, out=out, pred=pred)

    def fdiv(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("fdiv", a, b, out=out, pred=pred)

    def fsqrt(self, a, out=None, pred=None) -> Reg:
        return self._alu("fsqrt", a, out=out, pred=pred)

    def fexp(self, a, out=None, pred=None) -> Reg:
        return self._alu("fexp", a, out=out, pred=pred)

    def flog(self, a, out=None, pred=None) -> Reg:
        return self._alu("flog", a, out=out, pred=pred)

    def fmin(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("fmin", a, b, out=out, pred=pred)

    def fmax(self, a, b, out=None, pred=None) -> Reg:
        return self._alu("fmax", a, b, out=out, pred=pred)

    def abs_(self, a, out=None, pred=None) -> Reg:
        return self._alu("abs", a, out=out, pred=pred)

    # Predicates
    def setp(self, cmp: str, a: Operand, b: Operand,
             out: Optional[Reg] = None) -> Reg:
        if cmp not in CMP_OPS:
            raise IsaError(f"bad comparison {cmp!r}")
        srcs = (self._operand(a), self._operand(b))
        dst = out if out is not None else self._fresh(exprs.Unknown("pred"))
        if out is not None:
            self._write_expr(dst, exprs.Unknown("pred"))
        self._emit(Instr("setp", dst=dst, srcs=srcs, cmp=cmp))
        self._setp_info[dst.index] = ("cmp", cmp, self._expr_of(a),
                                      self._expr_of(b))
        return dst

    def not_(self, p: Reg, out: Optional[Reg] = None) -> Reg:
        dst = self._alu("not", p, out=out)
        info = self._setp_info.get(p.index) if isinstance(p, Reg) else None
        if info is not None and info[0] in ("cmp", "notcmp"):
            flipped = "notcmp" if info[0] == "cmp" else "cmp"
            self._setp_info[dst.index] = (flipped,) + info[1:]
        return dst

    def sel(self, pred: Reg, a: Operand, b: Operand,
            out: Optional[Reg] = None) -> Reg:
        srcs = (self._operand(pred), self._operand(a), self._operand(b))
        dst = out if out is not None else self._fresh(exprs.Unknown("sel"))
        if out is not None:
            self._write_expr(dst, exprs.Unknown("sel"))
        self._emit(Instr("sel", dst=dst, srcs=srcs))
        return dst

    def assign(self, dst: Reg, src: Operand) -> Reg:
        """Overwrite an existing register (loop counters, accumulators)."""
        return self.mov(src, out=dst)

    # -- memory ------------------------------------------------------------------

    def _record_access(self, param: Optional[str], space: str, is_store: bool,
                       offset: Operand, dtype: str,
                       pred: Optional[Reg]) -> int:
        access_id = len(self._accesses)
        guards = list(self._guard_stack)
        if pred is not None:
            info = self._setp_info.get(pred.index)
            guards.append(info if info is not None else ("opaque",))
        self._accesses.append(AccessInfo(
            access_id=access_id,
            param=param,
            space=space,
            is_store=is_store,
            offset_expr=self._expr_of(offset),
            dtype=dtype,
            predicated=pred is not None,
            guards=tuple(guards),
        ))
        return access_id

    def ld(self, base: Reg, offset: Operand, dtype: str = "f32",
           pred: Optional[Reg] = None, space: str = "global") -> Reg:
        """Load through pointer ``base`` at byte ``offset``."""
        if dtype not in DTYPE_SIZE:
            raise IsaError(f"bad dtype {dtype!r}")
        param = self._param_of(base)
        access_id = self._record_access(param, space, False, offset, dtype, pred)
        dst = self._fresh(exprs.Unknown("load"))
        self._emit(Instr("ld", dst=dst, srcs=(base, self._operand(offset)),
                         pred=pred, space=space, dtype=dtype,
                         access_id=access_id, param=param))
        return dst

    def st(self, base: Reg, offset: Operand, value: Operand,
           dtype: str = "f32", pred: Optional[Reg] = None,
           space: str = "global") -> None:
        """Store ``value`` through pointer ``base`` at byte ``offset``."""
        if dtype not in DTYPE_SIZE:
            raise IsaError(f"bad dtype {dtype!r}")
        param = self._param_of(base)
        access_id = self._record_access(param, space, True, offset, dtype, pred)
        self._emit(Instr("st", srcs=(base, self._operand(offset),
                                     self._operand(value)),
                         pred=pred, space=space, dtype=dtype,
                         access_id=access_id, param=param))

    def ld_idx(self, base: Reg, index: Operand, dtype: str = "f32",
               pred: Optional[Reg] = None, space: str = "global") -> Reg:
        """Load element ``index`` (emits the address-computation multiply)."""
        offset = self.mul(index, DTYPE_SIZE[dtype])
        return self.ld(base, offset, dtype=dtype, pred=pred, space=space)

    def ld_const(self, base: Reg, index: Operand, dtype: str = "f32",
                 pred: Optional[Reg] = None) -> Reg:
        """Load from constant memory (per-core constant cache)."""
        return self.ld_idx(base, index, dtype=dtype, pred=pred,
                           space="const")

    def ld_tex(self, base: Reg, index: Operand, dtype: str = "f32",
               pred: Optional[Reg] = None) -> Reg:
        """Load through the texture path (read-only, texture cache)."""
        return self.ld_idx(base, index, dtype=dtype, pred=pred,
                           space="texture")

    def st_idx(self, base: Reg, index: Operand, value: Operand,
               dtype: str = "f32", pred: Optional[Reg] = None) -> None:
        offset = self.mul(index, DTYPE_SIZE[dtype])
        self.st(base, offset, value, dtype=dtype, pred=pred)

    def _local_offset(self, var: LocalHandle, word: Operand) -> Reg:
        # Interleaved layout (§3.1): word w of thread t lives at
        # base + (w * total_threads + gtid) * 4.
        return self.mul(self.mad(word, self.gsize(), self.gtid()), 4)

    def ld_local(self, var: LocalHandle, word: Operand,
                 dtype: str = "f32", pred: Optional[Reg] = None) -> Reg:
        """Load 32-bit word ``word`` of this thread's local variable."""
        offset = self._local_offset(var, word)
        return self.ld(var.base, offset, dtype=dtype, pred=pred, space="local")

    def st_local(self, var: LocalHandle, word: Operand, value: Operand,
                 dtype: str = "f32", pred: Optional[Reg] = None) -> None:
        offset = self._local_offset(var, word)
        self.st(var.base, offset, value, dtype=dtype, pred=pred, space="local")

    def ld_shared(self, offset: Operand, dtype: str = "f32",
                  pred: Optional[Reg] = None) -> Reg:
        """Load from workgroup shared memory (on-chip, unprotected)."""
        access_id = self._record_access(None, "shared", False, offset,
                                        dtype, pred)
        dst = self._fresh(exprs.Unknown("load"))
        zero = self._operand(0)
        self._emit(Instr("ld", dst=dst, srcs=(zero, self._operand(offset)),
                         pred=pred, space="shared", dtype=dtype,
                         access_id=access_id))
        return dst

    def st_shared(self, offset: Operand, value: Operand, dtype: str = "f32",
                  pred: Optional[Reg] = None) -> None:
        access_id = self._record_access(None, "shared", True, offset,
                                        dtype, pred)
        zero = self._operand(0)
        self._emit(Instr("st", srcs=(zero, self._operand(offset),
                                     self._operand(value)),
                         pred=pred, space="shared", dtype=dtype,
                         access_id=access_id))

    def malloc(self, size: Operand) -> Reg:
        """Device-side heap allocation (per active lane), returns pointers
        tagged with the heap's preassigned buffer ID (§5.2.1)."""
        dst = self._fresh(exprs.Unknown("malloc"))
        self._ptr_param[dst.index] = "__heap"
        self._emit(Instr("malloc", dst=dst, srcs=(self._operand(size),)))
        return dst

    # -- control flow ----------------------------------------------------------------

    @contextmanager
    def if_(self, pred: Reg):
        """Structured divergence: lanes failing ``pred`` are masked off."""
        self._emit(Instr("if", srcs=(pred,)))
        self._ctrl_depth += 1
        info = self._setp_info.get(pred.index)
        self._guard_stack.append(info if info is not None else ("opaque",))
        try:
            yield
        finally:
            self._guard_stack.pop()
            self._ctrl_depth -= 1
            self._emit(Instr("endif"))

    def else_mark(self) -> None:
        """Flip to the complementary mask inside an ``if_`` block."""
        self._emit(Instr("else"))
        if self._guard_stack:
            top = self._guard_stack[-1]
            if top[0] in ("cmp", "notcmp"):
                flipped = "notcmp" if top[0] == "cmp" else "cmp"
                self._guard_stack[-1] = (flipped,) + top[1:]
            else:
                self._guard_stack[-1] = ("opaque",)

    @contextmanager
    def loop(self, count: Operand):
        """Uniform counted loop; yields the induction-variable register
        whose static range is ``[0, count)``."""
        induction = self._fresh(exprs.RangeVal(self._expr_of(count)))
        self._emit(Instr("loop", dst=induction,
                         srcs=(self._operand(count),)))
        self._ctrl_depth += 1
        self._guard_stack.append(("loop",))
        try:
            yield induction
        finally:
            self._guard_stack.pop()
            self._ctrl_depth -= 1
            self._emit(Instr("endloop", dst=induction))

    @contextmanager
    def while_(self, pred: Reg):
        """Divergent loop: lanes stay active while ``pred`` holds; the body
        must refresh ``pred``."""
        self._emit(Instr("while", srcs=(pred,)))
        self._ctrl_depth += 1
        self._guard_stack.append(("while",))
        try:
            yield
        finally:
            self._guard_stack.pop()
            self._ctrl_depth -= 1
            self._emit(Instr("endwhile", srcs=(pred,)))

    def bar(self) -> None:
        """Workgroup barrier."""
        self._emit(Instr("bar"))

    # -- finalisation -------------------------------------------------------------------

    def build(self) -> Kernel:
        """Finalise into a validated :class:`Kernel`."""
        if not self._instrs or self._instrs[-1].op != "exit":
            self._emit(Instr("exit"))
        self._built = True
        return Kernel(
            name=self.name,
            instructions=list(self._instrs),
            num_regs=self._nreg,
            params=list(self._params),
            local_vars=list(self._locals),
            shared_bytes=self._shared_bytes,
            accesses=list(self._accesses),
            arg_regs=dict(self._arg_regs),
        )
