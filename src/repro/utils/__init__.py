"""Small shared utilities (bit manipulation, deterministic RNG helpers)."""

from repro.utils.bitops import (
    bit_slice,
    mask,
    set_bit_slice,
    sign_extend,
    to_unsigned64,
)

__all__ = [
    "bit_slice",
    "mask",
    "set_bit_slice",
    "sign_extend",
    "to_unsigned64",
]
