"""Bit-field helpers used by pointer tagging, the ISA and the RBT encoding.

All helpers operate on non-negative Python integers treated as fixed-width
bit vectors.  Pointers in this codebase are 64-bit unsigned values.
"""

from __future__ import annotations

U64_MASK = (1 << 64) - 1


def mask(width: int) -> int:
    """Return a bitmask of ``width`` ones: ``mask(3) == 0b111``."""
    if width < 0:
        raise ValueError(f"mask width must be >= 0, got {width}")
    return (1 << width) - 1


def bit_slice(value: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``lo``.

    >>> bit_slice(0b10110, 1, 3)
    3
    """
    return (value >> lo) & mask(width)


def set_bit_slice(value: int, lo: int, width: int, field: int) -> int:
    """Return ``value`` with bits ``[lo, lo+width)`` replaced by ``field``."""
    if field < 0 or field > mask(width):
        raise ValueError(f"field {field:#x} does not fit in {width} bits")
    cleared = value & ~(mask(width) << lo)
    return cleared | (field << lo)


def to_unsigned64(value: int) -> int:
    """Wrap an arbitrary Python int into the unsigned 64-bit domain."""
    return value & U64_MASK


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    sign = 1 << (width - 1)
    return (value ^ sign) - sign


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ...; False for 0 and non-powers."""
    return value > 0 and (value & (value - 1)) == 0


def round_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (value + alignment - 1) // alignment * alignment


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (``value`` must be positive)."""
    if value <= 0:
        raise ValueError("value must be positive")
    return 1 << (value - 1).bit_length()
