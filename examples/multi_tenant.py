"""Tour of the multi-tenant serving layer.

Three tenants share the warm device pool: two honest ("acme" urgent,
"globex" best-effort) and one hostile ("initech", mounting the fuzz
attack corpus on half its requests).  The service schedules them with
weighted fair queueing, pairs kernels from *different* tenants onto
one device (§6.2 inter-core sharing), and writes every security event
to an audit log attributed to a (tenant, request, buffer) triple.

The finale replays every attack kind across a tenant boundary and
shows the victim's buffers coming back bit-identical.

Run:  python examples/multi_tenant.py
"""

import sys

from repro.service import (TenantSpec, run_attack_matrix, run_service)
from repro.service.attacks import render_matrix
from repro.service.simulator import ServiceConfig


def tenants():
    return (
        TenantSpec(tenant_id="acme", priority=0, weight=2,
                   mean_interarrival=300, deadline_cycles=40_000),
        TenantSpec(tenant_id="globex", priority=1, weight=1,
                   mean_interarrival=500, max_queue_depth=4),
        TenantSpec(tenant_id="initech", priority=1, weight=1,
                   mean_interarrival=350,
                   attack_kinds=("overflow", "underflow", "forged_id",
                                 "inter_buffer"),
                   attack_ratio=0.5),
    )


def main() -> int:
    cfg = ServiceConfig(tenants=tenants(), requests_per_tenant=6,
                        seed=2026, num_devices=2, coresidency=True)
    cfg.validate()

    print("== serving 3 tenants (1 hostile) on a 2-device pool ==\n")
    report = run_service(cfg)
    print(report.summary_text())

    print("\n== audit log (security events only) ==")
    for event in report.events:
        who = event.tenant or "<unresolved>"
        print(f"  cycle {event.cycle:>6}  {event.kind:<12} {who:<8} "
              f"{event.request_id:<16} {event.buffer or '-':<12} "
              f"{event.reason}")
    print(f"\n  audit digest: {report.digest}")

    # Every violation names the hostile tenant; honest tenants are clean.
    blamed = {e.tenant for e in report.events if e.kind == "violation"}
    assert blamed <= {"initech"}, f"mis-attributed violations: {blamed}"
    print("  every violation attributed to 'initech' — "
          "honest tenants clean")

    print("\n== cross-tenant attack matrix ==\n")
    matrix = run_attack_matrix(seed=7)
    print(render_matrix(matrix))
    if not matrix["all_pass"]:
        print("ATTACK MATRIX FAILED", file=sys.stderr)
        return 1
    print("\nAll attack kinds detected across the tenant boundary; the")
    print("victim's buffer digests match a solo baseline bit-for-bit.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
