"""Concurrent multi-kernel execution with GPUShield (paper §6.2).

Launches two kernels from different "tenants" on the same GPU in both
sharing modes:

* inter-core: each kernel owns half the shader cores;
* intra-core: both kernels share every core, and the RCache kernel-ID
  tags keep their bounds metadata apart.

One tenant is honest; the other attempts an out-of-bounds write.  The
violation is attributed to the right kernel and the honest tenant's
results are unaffected.

Run:  python examples/multi_kernel.py
"""

import struct

from repro import GpuSession, KernelBuilder, ShieldConfig, nvidia_config


def honest_kernel():
    b = KernelBuilder("honest")
    data = b.arg_ptr("data")
    n = b.arg_scalar("n")
    gtid = b.gtid()
    p = b.setp("lt", gtid, n)
    with b.if_(p):
        v = b.ld_idx(data, gtid, dtype="i32")
        b.st_idx(data, gtid, b.add(v, 1), dtype="i32")
    return b.build()


def rogue_kernel():
    b = KernelBuilder("rogue")
    data = b.arg_ptr("data")
    reach = b.arg_scalar("reach")
    first = b.setp("eq", b.gtid(), 0)
    with b.if_(first):
        j = b.ld_idx(data, 0, dtype="i32")
        b.st_idx(data, b.add(reach, b.mul(j, 0)), 0xBAD, dtype="i32")
    return b.build()


def run_mode(mode: str):
    session = GpuSession(nvidia_config(num_cores=4),
                         shield=ShieldConfig(enabled=True))
    n = 256
    honest_buf = session.driver.malloc(n * 4, name="honest-data")
    rogue_buf = session.driver.malloc(64, name="rogue-data")

    launch_honest = session.driver.launch(honest_kernel(),
                                          {"data": honest_buf, "n": n},
                                          4, 64)
    # The rogue tenant aims right at the honest tenant's buffer.
    reach = (honest_buf.va - rogue_buf.va) // 4
    launch_rogue = session.driver.launch(rogue_kernel(),
                                         {"data": rogue_buf,
                                          "reach": reach},
                                         1, 64)
    result = session.gpu.run([launch_honest, launch_rogue], mode=mode)
    viol = (session.driver.finish(launch_honest)
            + session.driver.finish(launch_rogue))

    values = struct.unpack(f"<{n}i", session.driver.read(honest_buf))
    print(f"\n== {mode} ==")
    print(f"  total cycles: {result.cycles}")
    print(f"  honest tenant data intact: {all(v == 1 for v in values)}")
    print(f"  L1 RCache hit rate: {result.l1_rcache_hit_rate:.2%}")
    for v in viol:
        owner = ("rogue" if v.kernel_id == launch_rogue.kernel_id
                 else "honest")
        print(f"  violation from kernel {v.kernel_id} ({owner}): "
              f"{v.reason} at [{v.lo:#x}, {v.hi:#x}]")
    assert all(v == 1 for v in values)
    assert viol and all(v.kernel_id == launch_rogue.kernel_id for v in viol)


def main():
    run_mode("inter_core")
    run_mode("intra_core")


if __name__ == "__main__":
    main()
