"""Software bounds checking vs GPUShield hardware (paper §5.7, §8.5).

Takes one indirect-access kernel (a gather) and protects it three ways:

1. compiler-inserted software guards on every access (naive);
2. the same guards, but only on accesses the static analysis could not
   prove safe (the paper's point that GPUShield's compiler also helps
   software schemes);
3. GPUShield hardware checking.

Prints the instruction/cycle costs and shows that all three actually
stop a hostile index — but only the hardware does it without touching
the kernel.

Run:  python examples/software_vs_hardware.py
"""

from repro import ShieldConfig, nvidia_config
from repro.analysis.harness import run_workload
from repro.analysis.report import bars
from repro.compiler.swinsert import transform_workload
from repro.workloads.templates import gather


def make():
    return gather("gather", n=2048, wg_size=64, data_len=2048, levels=2)


def main():
    config = nvidia_config()
    base = run_workload(make(), config, None, "unprotected")
    naive = run_workload(transform_workload(make(), use_bat=False),
                         config, None, "sw-naive")
    filtered = run_workload(transform_workload(make(), use_bat=True),
                            config, None, "sw+static")
    hw = run_workload(make(), config, ShieldConfig(enabled=True),
                      "gpushield")

    print("protecting an indirect gather kernel (2 chase levels):\n")
    print(bars("executed instructions (normalized)", {
        "unprotected": 1.0,
        "software guards (naive)": naive.instructions / base.instructions,
        "software guards +static": (filtered.instructions
                                    / base.instructions),
        "GPUShield hardware": hw.instructions / base.instructions,
    }))
    print()
    print(bars("execution time (normalized)", {
        "unprotected": 1.0,
        "software guards (naive)": naive.cycles / base.cycles,
        "software guards +static": filtered.cycles / base.cycles,
        "GPUShield hardware": hw.cycles / base.cycles,
    }))
    print(f"\nGPUShield runtime checks removed by static analysis: "
          f"{hw.check_reduction_percent:.1f}%")
    print("note: software guards change the binary and still cannot "
          "protect heap pointers; the hardware checks every pointer "
          "type at ~zero cost.")


if __name__ == "__main__":
    main()
