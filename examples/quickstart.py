"""Quickstart: run a kernel on the simulated GPU, with GPUShield on.

Demonstrates the core workflow:

1. create a :class:`GpuSession` (driver + GPU + GPUShield);
2. allocate device buffers and upload data;
3. write a kernel with :class:`KernelBuilder`;
4. launch, read results, inspect GPUShield statistics;
5. watch an out-of-bounds access get caught.

Run:  python examples/quickstart.py
"""

import struct

from repro import GpuSession, KernelBuilder, ShieldConfig, nvidia_config


def build_saxpy():
    """y[i] = a * x[i] + y[i] for i < n."""
    b = KernelBuilder("saxpy")
    x = b.arg_ptr("x", read_only=True)
    y = b.arg_ptr("y")
    a = b.arg_scalar("a")
    n = b.arg_scalar("n")
    gtid = b.gtid()
    guard = b.setp("lt", gtid, n)
    with b.if_(guard):
        xv = b.ld_idx(x, gtid, dtype="f32")
        yv = b.ld_idx(y, gtid, dtype="f32")
        b.st_idx(y, gtid, b.fmad(xv, a, yv), dtype="f32")
    return b.build()


def build_oob_probe():
    """Reads an attacker-controlled index — runtime-checked by the BCU."""
    b = KernelBuilder("oob_probe")
    buf = b.arg_ptr("buf")
    index = b.arg_scalar("index")
    first = b.setp("eq", b.gtid(), 0)
    with b.if_(first):
        j = b.ld_idx(buf, 0, dtype="i32")          # indirect: no Type 1
        b.st_idx(buf, b.add(index, b.mul(j, 0)), 0xBAD, dtype="i32")
    return b.build()


def main():
    session = GpuSession(nvidia_config(), shield=ShieldConfig(enabled=True))
    n = 1024

    # -- clean run -----------------------------------------------------------
    x = session.driver.malloc(n * 4, name="x")
    y = session.driver.malloc(n * 4, name="y")
    session.driver.write(x, struct.pack(f"<{n}f", *[float(i) for i in range(n)]))
    session.driver.write(y, struct.pack(f"<{n}f", *([1.0] * n)))

    result, violations = session.run(build_saxpy(),
                                     {"x": x, "y": y, "a": 2.0, "n": n},
                                     workgroups=n // 64, wg_size=64)
    out = struct.unpack(f"<{n}f", session.driver.read(y))
    print("== saxpy ==")
    print(f"  cycles: {result.cycles}, instructions: {result.instructions}")
    print(f"  y[10] = {out[10]} (expected {2.0 * 10 + 1.0})")
    print(f"  violations: {len(violations)}")
    print(f"  static check reduction: {result.check_reduction_percent:.1f}% "
          "(the compiler proved saxpy safe -> Type 1 pointers)")

    # -- an attack attempt ----------------------------------------------------
    victim = session.driver.malloc(256, name="victim")
    evil_index = 4096   # far out of bounds, jumps over any canary
    result, violations = session.run(build_oob_probe(),
                                     {"buf": victim, "index": evil_index},
                                     workgroups=1, wg_size=64)
    print("\n== out-of-bounds store ==")
    for v in violations:
        print(f"  DETECTED: {v.reason} on buffer id {v.buffer_id}, "
              f"bytes [{v.lo:#x}, {v.hi:#x}] (store={v.is_store})")
    print(f"  kernel aborted: {result.aborted} "
          "(logging policy drops the store instead of faulting)")
    assert violations, "the BCU must catch this"


if __name__ == "__main__":
    main()
