"""Post-incident forensics with the memory tracer.

A tenant notices their dispatch table was corrupted on a GPU without
GPUShield.  Re-running the workload with a :class:`MemoryTracer`
attached answers "who wrote over my buffer?" — and flipping GPUShield on
shows the same query returning only *blocked* attempts.

Run:  python examples/trace_forensics.py
"""

from repro import GpuSession, KernelBuilder, ShieldConfig, nvidia_config
from repro.analysis.trace import MemoryTracer, render_summary


def victim_kernel():
    b = KernelBuilder("victim")
    table = b.arg_ptr("table")
    n = b.arg_scalar("n")
    i = b.gtid()
    p = b.setp("lt", i, n)
    with b.if_(p):
        v = b.ld_idx(table, i, dtype="i32")
        b.st_idx(table, i, b.add(v, 0), dtype="i32")   # benign refresh
    return b.build()


def attacker_kernel():
    b = KernelBuilder("attacker")
    scratch = b.arg_ptr("scratch")
    reach = b.arg_scalar("reach")
    p = b.setp("eq", b.gtid(), 0)
    with b.if_(p):
        j = b.ld_idx(scratch, 0, dtype="i32")
        b.st_idx(scratch, b.add(reach, b.mul(j, 0)), 0x66600000,
                 dtype="i32")
    return b.build()


def run(shield: bool):
    session = GpuSession(
        nvidia_config(num_cores=2),
        shield=ShieldConfig(enabled=True) if shield else None)
    tracer = MemoryTracer()
    session.gpu.attach_tracer(tracer)

    table = session.driver.malloc(64 * 4, name="dispatch_table")
    scratch = session.driver.malloc(64, name="scratch")
    reach = (table.va - scratch.va) // 4

    victim_launch = session.driver.launch(victim_kernel(),
                                          {"table": table, "n": 64}, 1, 64)
    attacker_launch = session.driver.launch(attacker_kernel(),
                                            {"scratch": scratch,
                                             "reach": reach}, 1, 32)
    session.gpu.run([victim_launch, attacker_launch], mode="intra_core")
    session.driver.finish(victim_launch)
    session.driver.finish(attacker_launch)

    print(f"\n=== {'GPUShield on' if shield else 'native GPU'} ===")
    print(render_summary(tracer.summarize()))
    print(f"table[0] = {session.driver.read_i32(table, 0):#x}")
    print("stores overlapping the dispatch table:")
    for ev in tracer.stores_to(table.va, table.va + 64 * 4 - 1):
        who = ("victim" if ev.kernel_id == victim_launch.kernel_id
               else "ATTACKER")
        status = "landed" if ev.allowed else "BLOCKED by the BCU"
        print(f"  kernel {ev.kernel_id} ({who}) warp {ev.warp_id} "
              f"wrote [{ev.lo:#x}, {ev.hi:#x}] -> {status}")
    return tracer, victim_launch, attacker_launch


def main():
    tracer, _v, atk = run(shield=False)
    hostile = [ev for ev in tracer.events
               if ev.kernel_id == atk.kernel_id and ev.is_store]
    assert hostile and hostile[0].allowed, "attack should land natively"

    tracer, _v, atk = run(shield=True)
    hostile = [ev for ev in tracer.events
               if ev.kernel_id == atk.kernel_id and ev.is_store]
    assert hostile and not hostile[0].allowed, "BCU must block it"


if __name__ == "__main__":
    main()
