"""A tour of the compiler pipeline: IR, operand trees, the BAT, pointers.

Walks through §5.3 on three kernels of increasing difficulty:

* an affine streaming kernel — everything proven safe (Type 1);
* a stencil with clamped neighbours — min/max keep it provable;
* a gather kernel — indirect indices defeat the analysis (Type 2).

Shows the lowered IR (the Figure 8a shape), the per-access verdicts of
the Bounds-Analysis Table (Figure 5), the serialised BAT blob that would
be attached to the binary, and the pointer types the driver would embed.

Run:  python examples/static_analysis_tour.py
"""

from repro import GpuSession, KernelBuilder, ShieldConfig, nvidia_config
from repro.compiler.bat import AccessVerdict
from repro.compiler.dataflow import LaunchBounds
from repro.compiler.lowering import lower_kernel
from repro.compiler.static_bounds import StaticBoundsChecker


def affine_kernel():
    b = KernelBuilder("affine")
    src = b.arg_ptr("src", read_only=True)
    dst = b.arg_ptr("dst")
    n = b.arg_scalar("n")
    gtid = b.gtid()
    p = b.setp("lt", gtid, n)
    with b.if_(p):
        b.st_idx(dst, gtid, b.ld_idx(src, gtid, dtype="f32"), dtype="f32")
    return b.build()


def stencil_kernel():
    b = KernelBuilder("stencil")
    src = b.arg_ptr("src", read_only=True)
    dst = b.arg_ptr("dst")
    n = b.arg_scalar("n")
    gtid = b.gtid()
    p = b.setp("lt", gtid, n)
    last = b.sub(n, 1)
    with b.if_(p):
        left = b.max_(b.sub(gtid, 1), 0)
        right = b.min_(b.add(gtid, 1), last)
        acc = b.fadd(b.ld_idx(src, left, dtype="f32"),
                     b.ld_idx(src, right, dtype="f32"))
        b.st_idx(dst, gtid, acc, dtype="f32")
    return b.build()


def gather_kernel():
    b = KernelBuilder("gather")
    idx = b.arg_ptr("idx", read_only=True)
    data = b.arg_ptr("data", read_only=True)
    out = b.arg_ptr("out")
    n = b.arg_scalar("n")
    gtid = b.gtid()
    p = b.setp("lt", gtid, n)
    with b.if_(p):
        j = b.ld_idx(idx, gtid, dtype="i32")
        b.st_idx(out, gtid, b.ld_idx(data, j, dtype="f32"), dtype="f32")
    return b.build()


def analyze(kernel, buffer_sizes, n=256):
    checker = StaticBoundsChecker()
    bounds = LaunchBounds(workgroups=4, workgroup_size=64,
                          scalar_args={"n": n})
    return checker.analyze(kernel, bounds, buffer_sizes)


def show(kernel, buffer_sizes):
    print(f"\n################ {kernel.name} ################")
    fn = lower_kernel(kernel)
    print("-- lowered IR (Figure 8a shape) --")
    print(fn.dump())

    bat = analyze(kernel, buffer_sizes)
    print("\n-- bounds-analysis table (Figure 5) --")
    for row in bat.rows:
        kind = "ST" if row.is_store else "LD"
        interval = (f"[{row.interval[0]}, {row.interval[1]}]"
                    if row.interval else "unknown")
        print(f"  {kind} via {row.param:5s} offset {interval:>16s} "
              f"-> {row.verdict.name}")
    print("-- pointer classification --")
    for name, safe in bat.pointer_safe.items():
        print(f"  {name:5s}: {'Type 1 (no runtime checks)' if safe else 'Type 2 (RBT-checked at runtime)'}")
    blob = bat.to_bytes()
    print(f"-- BAT blob attached to the binary: {len(blob)} bytes, "
          f"magic {blob[:8]!r}")


def live_demo():
    """What the driver actually embeds at launch time."""
    from repro.core.pointer import decode
    print("\n################ driver view ################")
    session = GpuSession(nvidia_config(num_cores=1),
                         shield=ShieldConfig(enabled=True))
    n = 256
    bufs = {name: session.driver.malloc(n * 4, name=name)
            for name in ("idx", "data", "out")}
    launch = session.driver.launch(gather_kernel(), {**bufs, "n": n},
                                   4, 64)
    for name in ("idx", "data", "out"):
        tp = decode(launch.arg_values[name])
        print(f"  {name:5s}: C={tp.ptype.value} payload={tp.payload:#06x} "
              f"va={tp.va:#x}  ({launch.pointer_types[name].name})")
    session.gpu.run(launch)
    session.driver.finish(launch)


def main():
    size = {"src": 1024, "dst": 1024}
    show(affine_kernel(), size)
    show(stencil_kernel(), size)
    show(gather_kernel(), {"idx": 1024, "data": 1024, "out": 1024})
    live_demo()


if __name__ == "__main__":
    main()
