"""The paper's Figure 4 experiment: SVM buffer overflows on a stock GPU.

Two 16-int SVM buffers A and B sit in consecutive 512B-aligned slots.
Thread 0 performs three out-of-bounds writes through A:

* case 1 — ``A[0x10]``: lands in A's 512B alignment padding, suppressed;
* case 2 — ``A[0x80]``: lands inside the same 2MB device page -> silently
  corrupts B, and the host observes the corruption through SVM;
* case 3 — ``A[0x80000]``: crosses the 2MB page -> kernel aborted with an
  illegal-memory-access error.

Then the same three writes run under GPUShield: all three are detected
and dropped, including case 1 which native protection cannot even see.

Run:  python examples/overflow_attack.py
"""

from repro import GpuSession, KernelBuilder, ShieldConfig, nvidia_config

CASES = [
    (0x10, "case 1: within the 512B alignment slack"),
    (0x80, "case 2: within the same 2MB page"),
    (0x80000, "case 3: crossing the 2MB page boundary"),
]


def overflow_kernel(offset_elems: int):
    b = KernelBuilder(f"overflow_{offset_elems:#x}")
    a = b.arg_ptr("A")
    first = b.setp("eq", b.gtid(), 0)
    with b.if_(first):
        # Loading through A first makes the offset data-dependent, so the
        # compiler cannot prove it safe (as in a real injected payload).
        j = b.ld_idx(a, 0, dtype="i32")
        index = b.add(offset_elems, b.mul(j, 0))
        b.st_idx(a, index, 0xBAD, dtype="i32")
    return b.build()


def run_cases(shield: bool):
    banner = "GPUShield enabled" if shield else "native GPU (no protection)"
    print(f"\n=== {banner} ===")
    for offset, label in CASES:
        session = GpuSession(
            nvidia_config(num_cores=1),
            shield=ShieldConfig(enabled=True) if shield else None)
        a = session.driver.malloc_managed(16 * 4, name="A")
        b = session.driver.malloc_managed(16 * 4, name="B")
        result, violations = session.run(overflow_kernel(offset),
                                         {"A": a}, 1, 32)
        b0 = session.driver.read_i32(b, 0)   # host-side SVM read
        status = []
        if result.aborted:
            status.append("KERNEL ABORTED (illegal memory access)")
        if b0 == 0xBAD:
            status.append("B CORRUPTED (host observes 0xBAD)")
        if violations:
            status.append(
                f"GPUShield detected {violations[0].reason}, store dropped")
        if not status:
            status.append("silently suppressed (write landed in padding)")
        print(f"  {label}\n      -> {'; '.join(status)}")


def main():
    run_cases(shield=False)
    run_cases(shield=True)


if __name__ == "__main__":
    main()
