"""The mind-control attack's setup phase, and GPUShield stopping it.

The attack (paper §3.1/§5.7, Park et al. 2021) targets DNN inference
servers: a malicious input overflows a global weights buffer to
overwrite an adjacent function-pointer table, hijacking control flow to
degrade model predictions.

This example builds a miniature version of that pipeline:

* a "layer dispatch table" maps layer ids to activation-function ids;
* an inference kernel reads inputs, applies the activation selected by
  the table, and writes predictions;
* the attacker's payload makes a preprocessing kernel write past the
  weights buffer, flipping the table entry from RELU to a degenerate
  "zero" activation.

Without GPUShield the predictions collapse to zero; with it, the rogue
store is dropped, the violation is logged, and accuracy is preserved.

Run:  python examples/mind_control_defense.py
"""

import struct

from repro import GpuSession, KernelBuilder, ShieldConfig, nvidia_config

RELU = 1
ZEROED = 0


def preprocess_kernel():
    """Copies the input into the weights buffer... unless the payload
    length makes it write past the end (the injected overflow)."""
    b = KernelBuilder("preprocess")
    payload = b.arg_ptr("payload", read_only=True)
    weights = b.arg_ptr("weights")
    length = b.arg_scalar("length")   # attacker-controlled!
    gtid = b.gtid()
    p = b.setp("lt", gtid, length)
    with b.if_(p):
        v = b.ld_idx(payload, b.mod(gtid, 64), dtype="i32")
        b.st_idx(weights, gtid, v, dtype="i32")
    return b.build()


def inference_kernel():
    """pred[i] = activation_table[0] == RELU ? max(x, 0) : 0."""
    b = KernelBuilder("inference")
    table = b.arg_ptr("table", read_only=True)
    x = b.arg_ptr("x", read_only=True)
    pred = b.arg_ptr("pred")
    n = b.arg_scalar("n")
    gtid = b.gtid()
    p = b.setp("lt", gtid, n)
    with b.if_(p):
        mode = b.ld_idx(table, 0, dtype="i32")
        xv = b.ld_idx(x, gtid, dtype="f32")
        relu = b.fmax(xv, 0.0)
        is_relu = b.setp("eq", mode, RELU)
        b.st_idx(pred, gtid, b.sel(is_relu, relu, 0.0), dtype="f32")
    return b.build()


def run_pipeline(shield: bool):
    session = GpuSession(
        nvidia_config(num_cores=2),
        shield=ShieldConfig(enabled=True) if shield else None)
    n = 256

    weights = session.driver.malloc(n * 4, name="weights")
    table = session.driver.malloc(64, name="activation_table")
    x = session.driver.malloc(n * 4, name="x")
    pred = session.driver.malloc(n * 4, name="pred")
    payload = session.driver.malloc(64 * 4, name="payload")

    session.driver.write_i32(table, 0, RELU)
    session.driver.write(x, struct.pack(f"<{n}f",
                                        *[(-1.0) ** i * i for i in range(n)]))
    session.driver.write(payload, struct.pack("<64i", *([ZEROED] * 64)))

    # The attacker claims the payload is longer than the weights buffer:
    # enough extra elements to reach the adjacent table allocation.
    overflow_length = (table.va - weights.va) // 4 + 1
    _res, violations = session.run(
        preprocess_kernel(),
        {"payload": payload, "weights": weights, "length": overflow_length},
        workgroups=-(-overflow_length // 64), wg_size=64)

    session.run(inference_kernel(),
                {"table": table, "x": x, "pred": pred, "n": n},
                workgroups=n // 64, wg_size=64)
    preds = struct.unpack(f"<{n}f", session.driver.read(pred))
    nonzero = sum(1 for v in preds if v != 0.0)
    mode = session.driver.read_i32(table, 0)
    return mode, nonzero, violations


def main():
    print("== native GPU ==")
    mode, nonzero, _ = run_pipeline(shield=False)
    print(f"  activation table entry: {mode} "
          f"({'RELU' if mode == RELU else 'HIJACKED -> zeroed'})")
    print(f"  non-zero predictions: {nonzero}/256")
    assert mode == ZEROED, "attack should succeed without protection"

    print("\n== with GPUShield ==")
    mode, nonzero, violations = run_pipeline(shield=True)
    print(f"  activation table entry: {mode} "
          f"({'RELU' if mode == RELU else 'HIJACKED'})")
    print(f"  non-zero predictions: {nonzero}/256")
    print(f"  logged violations: {len(violations)} "
          f"(first: {violations[0].reason} at [{violations[0].lo:#x}, "
          f"{violations[0].hi:#x}])")
    assert mode == RELU, "GPUShield must keep the table intact"
    assert nonzero > 0


if __name__ == "__main__":
    main()
