"""Setup shim.

The execution environment has no network and no ``wheel`` package, so a
PEP 517 editable install cannot build; this classic setup.py keeps
``pip install -e .`` working through the legacy code path.  Package
metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("GPUShield reproduction: region-based bounds checking "
                 "for GPUs (ISCA 2022)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
